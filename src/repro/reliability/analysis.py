"""Closed-form reliability arithmetic.

Raw-rate conversion (the paper uses 5000 FIT/Mbit, following Li et al.)
and the multi-bit analysis behind two in-text results:

* conventional SECDED and COP both fail on a double error within one code
  word; the probability of two uniformly placed errors sharing a word
  scales with the sum of squared word sizes, so with the paper's
  fair-comparison assumption — the wide (523,512) code for COP-ER against
  eight (72,64) words per block for an ECC DIMM — COP-ER's uncorrectable
  rate is ``523^2 / (8 * 72^2) = 6.6x`` the ECC DIMM's ("results show that
  COP-ER's error rate is 6x that of an ECC DIMM approach");
* for plain COP, two errors in *different* code words silently demote a
  compressed block to raw (only 2 valid words remain), while two errors in
  the *same* word are detected — :func:`double_error_outcome_probs`
  separates the cases.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.config import COPConfig

__all__ = [
    "RAW_FIT_PER_MBIT",
    "fit_to_failures_per_bit_ns",
    "expected_failures",
    "same_word_double_error_weight",
    "coper_vs_ecc_dimm_ratio",
    "double_error_outcome_probs",
]

#: Raw soft error rate assumed by the paper (Li et al., SC 2011).
RAW_FIT_PER_MBIT = 5000.0

_NS_PER_HOUR = 3600.0 * 1e9
_BITS_PER_MBIT = 1e6
_FIT_HOURS = 1e9  # FIT = failures per 10^9 device-hours


def fit_to_failures_per_bit_ns(fit_per_mbit: float = RAW_FIT_PER_MBIT) -> float:
    """Convert FIT/Mbit into expected failures per bit-nanosecond."""
    per_bit_hour = fit_per_mbit / (_FIT_HOURS * _BITS_PER_MBIT)
    return per_bit_hour / _NS_PER_HOUR


def expected_failures(
    bit_ns: float, fit_per_mbit: float = RAW_FIT_PER_MBIT
) -> float:
    """Expected single-bit upsets over ``bit_ns`` of vulnerable bit-time."""
    return bit_ns * fit_to_failures_per_bit_ns(fit_per_mbit)


def same_word_double_error_weight(word_bits: Iterable[int]) -> float:
    """Relative probability weight of two errors landing in one code word.

    For uniformly placed errors the probability that both fall in the same
    word is proportional to ``sum(n_i^2)`` over word sizes ``n_i`` (for
    fixed total bits).  Only the ratio between protection schemes matters.
    """
    return float(sum(n * n for n in word_bits))


def coper_vs_ecc_dimm_ratio() -> float:
    """COP-ER vs ECC-DIMM uncorrectable (same-word double error) ratio.

    Uses the paper's fair-comparison geometry: one (523,512) word per block
    for COP-ER, eight (72,64) words per block for the ECC DIMM.  Evaluates
    to ~6.6 — the paper reports "6x".
    """
    coper = same_word_double_error_weight([523])
    dimm = same_word_double_error_weight([72] * 8)
    return coper / dimm


def double_error_outcome_probs(config: COPConfig | None = None) -> dict[str, float]:
    """Outcome split for two errors in one compressed COP block.

    Returns probabilities (conditioned on exactly two errors striking the
    same stored block, uniform over its bits) of:

    * ``detected`` — both errors in one code word: that word fails DED,
      the other words stay valid, the decoder flags the block;
    * ``silent`` — errors in two different words: only ``m - 2`` valid
      words remain, the block falls below the threshold and is passed to
      the cache as if it were raw data — silent corruption.

    This is the scenario Section 3.1 discusses when motivating the 8-byte
    variant (which tolerates multiple single-word errors).
    """
    config = config or COPConfig.four_byte()
    n = config.codeword_bits
    total = config.num_codewords * n
    # P(second error lands in the same n-bit word as the first).
    p_same = (n - 1) / (total - 1)
    threshold_broken = (config.num_codewords - 2) < config.codeword_threshold
    return {
        "detected": p_same,
        "silent": (1.0 - p_same) if threshold_broken else 0.0,
        "corrected": 0.0 if threshold_broken else (1.0 - p_same),
    }
