"""Patrol-scrubbing extension to the vulnerability model.

Servers periodically *scrub* DRAM: a background engine reads every block,
corrects single-bit errors, and writes the corrected data back, bounding
how long errors can accumulate.  The paper's model has no scrubbing (its
mid-range target systems typically do not), but the interaction is
natural to ask about: scrubbing converts long residency windows — where
COP's multi-error corner cases live — into bounded ones.

:class:`ScrubbingTracker` wraps the PARMA accounting with a scrub
interval: every residency window is chopped into at most
``scrub_interval_ns`` pieces, and (for schemes that correct single
errors) only multi-error *within one piece* can defeat the protection.
:func:`scrubbed_failure_probability` composes this with the Poisson
outcome model of :mod:`repro.reliability.markov`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.reliability.markov import (
    OutcomeProbabilities,
    consumed_failure_probability,
)

__all__ = ["ScrubPlan", "scrubbed_failure_probability", "scrub_interval_for_target"]


@dataclass(frozen=True)
class ScrubPlan:
    """A patrol-scrub configuration."""

    interval_ns: float  # time to sweep the whole memory once
    #: Bandwidth cost: blocks scrubbed per second per GB is implied by
    #: the interval; exposed for the performance discussion.
    memory_bytes: int = 8 << 30

    def __post_init__(self) -> None:
        if self.interval_ns <= 0:
            raise ValueError("scrub interval must be positive")

    @property
    def scrub_reads_per_second(self) -> float:
        """Background read rate the scrubber injects."""
        blocks = self.memory_bytes / 64
        return blocks / (self.interval_ns * 1e-9)


def scrubbed_failure_probability(
    rate_per_bit_ns: float,
    bits: int,
    residency_ns: float,
    scheme: str,
    plan: ScrubPlan,
    **kwargs,
) -> OutcomeProbabilities:
    """Outcome distribution with periodic scrubbing.

    The residency window splits into ``n`` full scrub intervals plus a
    remainder; each piece is an independent accumulate-then-correct
    episode (the scrub read consumes accumulated single errors exactly
    like a demand read).  Failure events across pieces combine as
    independent trials.
    """
    interval = plan.interval_ns
    full, rest = divmod(residency_ns, interval)
    pieces = [interval] * int(full) + ([rest] if rest > 0 else [])
    if not pieces:
        pieces = [0.0]

    survive = 1.0
    detected_any = 0.0
    for piece in pieces:
        outcome = consumed_failure_probability(
            rate_per_bit_ns, bits, piece, scheme, **kwargs
        )
        # A piece "fails" when its errors exceed the scheme (detected or
        # silent); survival multiplies across pieces.
        piece_survive = outcome.clean + outcome.corrected
        detected_any += survive * outcome.detected
        survive *= piece_survive

    silent = max(0.0, 1.0 - survive - detected_any)
    # Decompose survival back into clean vs corrected for reporting: the
    # window is clean only if *every* piece was clean.
    p_clean = math.exp(-rate_per_bit_ns * bits * residency_ns)
    corrected = max(0.0, survive - p_clean)
    return OutcomeProbabilities(p_clean, corrected, detected_any, silent)


def scrub_interval_for_target(
    rate_per_bit_ns: float,
    bits: int,
    residency_ns: float,
    scheme: str,
    target_silent: float,
    **kwargs,
) -> float:
    """Smallest power-of-two scrub interval meeting a silent-failure target.

    A capacity-planning helper: halve the interval until the composed
    silent probability drops below ``target_silent`` (or the interval
    reaches one millionth of the residency, at which point scrubbing
    bandwidth, not reliability, is the binding constraint).
    """
    interval = residency_ns
    floor = residency_ns / 1e6
    while interval > floor:
        plan = ScrubPlan(interval_ns=interval)
        outcome = scrubbed_failure_probability(
            rate_per_bit_ns, bits, residency_ns, scheme, plan, **kwargs
        )
        if outcome.silent <= target_silent:
            return interval
        interval /= 2
    return interval
