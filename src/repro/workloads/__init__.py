"""Workload substrate: synthetic stand-ins for SPEC2006 / PARSEC traces.

The paper drives every result from Pin-captured L3-miss traces carrying the
data contents of each referenced block.  Offline we reproduce the two
properties those traces contribute:

* **content statistics** — per-benchmark mixtures of the data archetypes
  that determine compressibility under each scheme (small integers,
  pointers with shared high bits, clustered floating point, ASCII/UTF-16
  text, sparse arrays, incompressible bytes);
* **access statistics** — L3 miss rate, memory-level parallelism, write
  fraction, footprint and spatial locality, which determine the
  performance and vulnerability results.

Profiles are calibrated so the compressibility figures (Figs. 1, 4, 8, 9)
land near the paper's per-benchmark values; all downstream experiments
then exercise the real code paths with faithful input statistics.
"""

from repro.workloads.blocks import BlockSource
from repro.workloads.generators import COMPONENTS, generate_block
from repro.workloads.profiles import (
    FIG1_BENCHMARKS,
    FIG4_BENCHMARKS,
    MEMORY_INTENSIVE,
    PROFILES,
    BenchmarkProfile,
    profiles_in_suite,
)
from repro.workloads.tracegen import Access, Epoch, TraceGenerator

__all__ = [
    "COMPONENTS",
    "generate_block",
    "BenchmarkProfile",
    "PROFILES",
    "MEMORY_INTENSIVE",
    "FIG1_BENCHMARKS",
    "FIG4_BENCHMARKS",
    "profiles_in_suite",
    "BlockSource",
    "Access",
    "Epoch",
    "TraceGenerator",
]
