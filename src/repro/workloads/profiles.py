"""Per-benchmark workload profiles.

Each profile pairs a *content mixture* (weights over the archetypes of
:mod:`repro.workloads.generators`) with *access statistics* for the trace
generator.  Mixtures are calibrated against the paper's compressibility
data (Figs. 1, 4, 8, 9): text-processing benchmarks (perlbench, xalancbmk)
are TXT-heavy, pointer chasers (mcf, canneal, astar) are MSB-friendly,
SPECfp benchmarks mix same-sign and mixed-sign clustered floating point
(the shifted-MSB story of Fig. 4), libquantum is dominated by records that
only very low target ratios can exploit (Fig. 1), and media/compression
codes (x264, bzip2) carry the largest high-entropy shares — they are the
least compressible bars of Fig. 9.

Access statistics (perfect-L3 IPC, L3 MPKI, footprint, write fraction,
memory-level parallelism, spatial locality) are representative values for
these suites on a 4 MB LLC; the performance model only depends on their
relative magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "BenchmarkProfile",
    "PROFILES",
    "MEMORY_INTENSIVE",
    "FIG1_BENCHMARKS",
    "FIG4_BENCHMARKS",
    "profiles_in_suite",
]

SPECINT = "SPECint 2006"
SPECFP = "SPECfp 2006"
PARSEC = "PARSEC"


@dataclass(frozen=True)
class BenchmarkProfile:
    """Content + access statistics of one benchmark."""

    name: str
    suite: str
    #: archetype name -> weight (normalised by consumers).
    mixture: tuple[tuple[str, float], ...]
    perfect_ipc: float  # IPC with a perfect L3 (interval-model input)
    mpki: float  # L3 misses per kilo-instruction
    footprint_mb: int  # resident working set touched by misses
    write_fraction: float  # fraction of misses that dirty the line
    mlp: float  # mean overlappable misses per interval
    locality: float  # P(next miss is sequential to the previous)

    def weights(self) -> dict[str, float]:
        total = sum(w for _, w in self.mixture)
        return {name: w / total for name, w in self.mixture}


def _p(
    name: str,
    suite: str,
    mixture: dict[str, float],
    ipc: float,
    mpki: float,
    footprint_mb: int,
    wf: float,
    mlp: float,
    locality: float,
) -> BenchmarkProfile:
    return BenchmarkProfile(
        name, suite, tuple(mixture.items()), ipc, mpki, footprint_mb, wf, mlp,
        locality,
    )


_ALL = [
    # ---- SPECint 2006 ----------------------------------------------------
    _p("astar", SPECINT,
       {"pointer64": .42, "small_int32": .22, "sparse64": .15,
        "record_struct": .13, "random_bytes": .08},
       1.1, 5.0, 64, .30, 2.0, .35),
    _p("bzip2", SPECINT,
       {"small_int32": .28, "pointer64": .16, "sparse64": .16,
        "ascii_text": .20, "random_bytes": .17},
       1.4, 3.0, 96, .35, 2.5, .55),
    _p("gcc", SPECINT,
       {"pointer64": .36, "small_int32": .26, "sparse64": .18,
        "ascii_text": .08, "record_struct": .06, "random_bytes": .06},
       1.3, 4.0, 64, .30, 2.2, .45),
    _p("gobmk", SPECINT,
       {"small_int32": .30, "pointer64": .25, "sparse64": .20,
        "zeros": .05, "random_bytes": .20},
       1.4, 1.0, 32, .25, 1.4, .30),
    _p("h264ref", SPECINT,
       {"small_int32": .25, "sparse64": .18, "record_struct": .12,
        "pointer64": .15, "random_bytes": .30},
       1.8, 1.2, 64, .35, 2.0, .65),
    _p("hmmer", SPECINT,
       {"small_int32": .35, "record_struct": .20, "sparse64": .15,
        "pointer64": .10, "random_bytes": .20},
       2.0, 0.8, 32, .30, 1.5, .55),
    _p("libquantum", SPECINT,
       {"libquantum_state": .62, "float32_pair": .12, "sparse64": .06,
        "barely_rle": .12, "random_bytes": .08},
       1.6, 22.0, 128, .25, 6.0, .85),
    _p("mcf", SPECINT,
       {"pointer64": .52, "small_int32": .22, "sparse64": .15,
        "record_struct": .06, "random_bytes": .05},
       0.6, 25.0, 256, .30, 3.0, .15),
    _p("omnetpp", SPECINT,
       {"pointer64": .36, "float64_mixed": .12, "small_int64": .18,
        "sparse64": .15, "record_struct": .11, "random_bytes": .08},
       0.9, 10.0, 128, .35, 1.8, .20),
    _p("perlbench", SPECINT,
       {"ascii_text": .42, "utf16_text": .13, "pointer64": .22,
        "small_int32": .12, "sparse64": .07, "random_bytes": .04},
       1.7, 1.5, 48, .35, 1.5, .40),
    _p("sjeng", SPECINT,
       {"small_int64": .32, "sparse64": .24, "pointer64": .20,
        "zeros": .08, "random_bytes": .12},
       1.5, 1.5, 48, .30, 1.5, .25),
    _p("xalancbmk", SPECINT,
       {"ascii_text": .30, "utf16_text": .19, "pointer64": .27,
        "small_int32": .10, "sparse64": .08, "random_bytes": .06},
       1.2, 5.0, 96, .30, 2.0, .30),
    # ---- SPECfp 2006 -----------------------------------------------------
    _p("bwaves", SPECFP,
       {"float64_pos": .52, "float64_mixed": .21, "sparse64": .16,
        "small_int64": .07, "random_bytes": .04},
       1.8, 12.0, 192, .30, 5.0, .80),
    _p("cactusADM", SPECFP,
       {"float64_pos": .34, "float64_mixed": .34, "sparse64": .24,
        "random_bytes": .08},
       1.4, 5.0, 128, .35, 3.0, .70),
    _p("calculix", SPECFP,
       {"float64_pos": .38, "float64_mixed": .22, "small_int32": .16,
        "sparse64": .14, "random_bytes": .10},
       1.9, 1.5, 48, .30, 2.0, .60),
    _p("dealII", SPECFP,
       {"float64_mixed": .30, "float64_pos": .14, "pointer64": .22,
        "small_int32": .12, "sparse64": .10, "random_bytes": .12},
       1.8, 2.0, 64, .30, 2.0, .50),
    _p("gamess", SPECFP,
       {"float64_pos": .44, "float64_mixed": .18, "small_int32": .16,
        "sparse64": .12, "random_bytes": .10},
       2.0, 0.7, 32, .25, 1.5, .60),
    _p("GemsFDTD", SPECFP,
       {"float64_pos": .36, "float64_mixed": .36, "sparse64": .20,
        "random_bytes": .08},
       1.3, 10.0, 256, .35, 4.5, .80),
    _p("gromacs", SPECFP,
       {"float64_pos": .34, "float64_mixed": .26, "small_int32": .12,
        "sparse64": .14, "random_bytes": .14},
       1.7, 1.0, 32, .30, 1.5, .55),
    _p("lbm", SPECFP,
       {"float64_pos": .52, "float64_mixed": .32, "sparse64": .10,
        "random_bytes": .06},
       1.5, 20.0, 256, .45, 6.0, .90),
    _p("leslie3d", SPECFP,
       {"float64_pos": .42, "float64_mixed": .30, "sparse64": .18,
        "random_bytes": .10},
       1.5, 8.0, 128, .35, 4.0, .80),
    _p("milc", SPECFP,
       {"float64_pos": .32, "float64_mixed": .42, "sparse64": .14,
        "random_bytes": .12},
       1.2, 15.0, 256, .35, 4.0, .60),
    _p("namd", SPECFP,
       {"float64_pos": .32, "float64_mixed": .26, "float32_pair": .16,
        "sparse64": .12, "random_bytes": .14},
       2.0, 1.0, 48, .25, 2.0, .60),
    _p("povray", SPECFP,
       {"float64_mixed": .22, "float64_pos": .12, "pointer64": .26,
        "ascii_text": .12, "small_int32": .14, "random_bytes": .14},
       1.9, 0.5, 24, .25, 1.3, .45),
    _p("soplex", SPECFP,
       {"float64_mixed": .26, "float64_pos": .22, "pointer64": .22,
        "sparse64": .20, "random_bytes": .10},
       1.0, 12.0, 192, .30, 3.0, .45),
    _p("sphinx3", SPECFP,
       {"float32_pair": .48, "float64_mixed": .14, "sparse64": .16,
        "small_int32": .12, "random_bytes": .10},
       1.4, 10.0, 128, .20, 3.0, .60),
    _p("tonto", SPECFP,
       {"float64_pos": .44, "float64_mixed": .22, "sparse64": .20,
        "random_bytes": .14},
       1.8, 1.0, 32, .30, 1.5, .55),
    _p("wrf", SPECFP,
       {"float32_pair": .42, "float64_mixed": .22, "float64_pos": .10,
        "sparse64": .16, "random_bytes": .10},
       1.5, 5.0, 128, .35, 3.0, .70),
    _p("zeusmp", SPECFP,
       {"float64_pos": .38, "float64_mixed": .32, "zeros": .08,
        "sparse64": .12, "random_bytes": .10},
       1.5, 6.0, 128, .35, 3.5, .75),
    # ---- PARSEC ----------------------------------------------------------
    _p("canneal", PARSEC,
       {"pointer64": .46, "small_int32": .19, "sparse64": .16,
        "record_struct": .11, "random_bytes": .08},
       0.8, 8.0, 256, .25, 1.6, .10),
    _p("fluidanimate", PARSEC,
       {"float32_pair": .52, "float64_mixed": .16, "sparse64": .15,
        "small_int32": .10, "random_bytes": .07},
       1.4, 3.0, 128, .40, 2.5, .60),
    _p("streamcluster", PARSEC,
       {"float32_pair": .64, "sparse64": .16, "small_int32": .10,
        "random_bytes": .10},
       1.1, 12.0, 128, .15, 5.0, .85),
    _p("x264", PARSEC,
       {"small_int32": .24, "sparse64": .20, "pointer64": .16,
        "record_struct": .14, "random_bytes": .26},
       1.6, 2.0, 96, .40, 3.0, .70),
]

#: All profiles by name.
PROFILES: dict[str, BenchmarkProfile] = {p.name: p for p in _ALL}

#: Table 2: the 20 memory-intensive benchmarks the result figures show.
MEMORY_INTENSIVE: tuple[str, ...] = (
    "astar", "bwaves", "bzip2", "cactusADM", "canneal", "fluidanimate",
    "gcc", "GemsFDTD", "lbm", "mcf", "milc", "omnetpp", "perlbench",
    "sjeng", "soplex", "streamcluster", "wrf", "x264", "xalancbmk",
    "zeusmp",
)

#: Fig. 1 plots FPC target-ratio curves for these (plus the SPECint mean).
FIG1_BENCHMARKS: tuple[str, ...] = ("astar", "gcc", "libquantum", "mcf")

#: Fig. 4 evaluates shifted MSB compression on SPECfp 2006.
FIG4_BENCHMARKS: tuple[str, ...] = (
    "bwaves", "cactusADM", "calculix", "dealII", "gamess", "GemsFDTD",
    "gromacs", "lbm", "leslie3d", "milc", "namd", "povray", "soplex",
    "sphinx3", "tonto", "wrf", "zeusmp",
)


def profiles_in_suite(suite: str) -> list[BenchmarkProfile]:
    """All profiles belonging to a suite name."""
    return [p for p in PROFILES.values() if p.suite == suite]
