"""Block-content archetypes.

Each component is a deterministic function ``rng -> 64 bytes`` modelling a
data pattern that real applications exhibit and that interacts differently
with COP's compression schemes:

=================== =========================================== ==============
component           models                                      compressed by
=================== =========================================== ==============
zeros               untouched / zero-initialised pages          everything
small_int32         counters, indices, enum arrays (int32)      RLE, FPC
small_int64         64-bit counters and sizes                   RLE, FPC
pointer64           heap pointers sharing high address bits     MSB
float64_pos         same-sign doubles of similar magnitude      MSB (both)
float64_mixed       mixed-sign doubles of similar magnitude     MSB (shifted)
float32_pair        clustered single-precision pairs            MSB (shifted)
ascii_text          log/markup/source text                      TXT
utf16_text          UTF-16 text of ASCII characters             TXT, RLE
sparse64            mostly-zero arrays with a few live words    RLE, FPC
barely_rle          records with two 3-byte zero gaps — the     RLE (exactly)
                    minimum redundancy COP can exploit
record_struct       mixed struct: pointer + int + payload       RLE (usually)
random_bytes        encrypted/compressed/high-entropy data      nothing
=================== =========================================== ==============

``barely_rle`` is what makes libquantum-like behaviour possible: blocks
that a 50 %-target algorithm calls incompressible but that COP, needing
only 6.25 %, protects (Fig. 1's motivation).
"""

from __future__ import annotations

import random
import struct
from typing import Callable

from repro.compression.base import BLOCK_BYTES

__all__ = ["COMPONENTS", "generate_block"]


def _zeros(rng: random.Random) -> bytes:
    return bytes(BLOCK_BYTES)


def _small_int32(rng: random.Random) -> bytes:
    """Small 32-bit values (counters, indices — usually non-negative)."""
    # rng.choice((4, 8, 12, 16)) draws _randbelow(4): getrandbits over
    # (4).bit_length() == 3 bits, rejecting values >= 4 — inlined below
    # verbatim so the consumed bit stream is identical.
    signed = rng.random() < 0.3
    rb = rng.getrandbits
    magnitudes = (4, 8, 12, 16)
    values = []
    for _ in range(BLOCK_BYTES // 4):
        r = rb(3)
        while r >= 4:
            r = rb(3)
        magnitude = magnitudes[r]
        value = rb(magnitude)
        if signed:
            value -= 1 << (magnitude - 1)
        values.append(value)
    return struct.pack("<16i", *values)


def _small_int64(rng: random.Random) -> bytes:
    """Small 64-bit values (sizes, counts — usually non-negative)."""
    signed = rng.random() < 0.3
    rb = rng.getrandbits
    magnitudes = (8, 16, 24, 32)
    values = []
    for _ in range(BLOCK_BYTES // 8):
        r = rb(3)
        while r >= 4:
            r = rb(3)
        magnitude = magnitudes[r]
        value = rb(magnitude)
        if signed:
            value -= 1 << (magnitude - 1)
        values.append(value)
    return struct.pack("<8q", *values)


def _pointer64(rng: random.Random) -> bytes:
    """Eight pointers into one 16 MB heap region (top 40 bits shared)."""
    rb = rng.getrandbits
    base = (rb(24) << 24) | (0x7F << 40)
    return struct.pack(
        "<8Q", *(base + rb(24) for _ in range(BLOCK_BYTES // 8))
    )


def _float64(rng: random.Random, mixed_signs: bool) -> bytes:
    """Doubles of similar magnitude (shared top exponent bits).

    Physical-simulation arrays hold values whose exponents sit within a
    narrow band.  The 5 bits MSB compression compares are the *top* bits
    of the IEEE-754 exponent, which are identical as long as exponents
    stay within one 64-binade band; a per-block magnitude around 2**-8
    with +-2 binades of per-element spread stays safely inside it.
    """
    # Inlined equivalents of the stdlib draws (identical bit stream):
    # uniform(1.0, 2.0) == 1.0 + (2.0 - 1.0) * random() == 1.0 + random(),
    # and randrange(3) == _randbelow(3): getrandbits(2) with rejection.
    block_exp = rng.randrange(-24, -4)  # binade band well inside [2^-63, 1)
    scales = (
        2.0**block_exp,
        2.0 ** (block_exp + 1),
        2.0 ** (block_exp + 2),
    )
    rnd = rng.random
    rb = rng.getrandbits
    values = []
    for _ in range(BLOCK_BYTES // 8):
        mantissa = 1.0 + rnd()
        spread = rb(2)
        while spread >= 3:
            spread = rb(2)
        value = mantissa * scales[spread]
        if mixed_signs and rnd() < 0.5:
            value = -value
        values.append(value)
    return struct.pack("<8d", *values)


def _float64_pos(rng: random.Random) -> bytes:
    return _float64(rng, mixed_signs=False)


def _float64_mixed(rng: random.Random) -> bytes:
    return _float64(rng, mixed_signs=True)


def _float32_pair(rng: random.Random) -> bytes:
    """Clustered single-precision values, mixed signs.

    MSB compression uses an 8-byte stride, so only the upper float of each
    pair enters the comparison — the case Section 3.2.1 notes still works.
    """
    # randrange(2) == _randbelow(2): getrandbits over (2).bit_length()
    # == 2 bits, rejecting values >= 2; uniform(1.0, 2.0) == 1.0 +
    # random() — see _float64.
    block_exp = rng.randrange(-6, 0)  # narrow binade band (see _float64)
    mixed = rng.random() < 0.4  # magnitudes (distances, norms) skew positive
    scales = (2.0**block_exp, 2.0 ** (block_exp + 1))
    rnd = rng.random
    rb = rng.getrandbits
    values = []
    for _ in range(BLOCK_BYTES // 4):
        mantissa = 1.0 + rnd()
        spread = rb(2)
        while spread >= 2:
            spread = rb(2)
        value = mantissa * scales[spread]
        if mixed and rnd() < 0.5:
            value = -value
        values.append(value)
    return struct.pack("<16f", *values)


_TEXT_ALPHABET = (
    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    b" \t\n<>/=().,;:'\"-_"
)


def _text_chars(rng: random.Random, count: int) -> bytearray:
    """``count`` draws from the alphabet, inlining ``rng.choice``.

    ``choice`` over the alphabet is ``_randbelow(len(alphabet))``:
    ``getrandbits(bit_length)`` with rejection of out-of-range values —
    replicated here verbatim so the bit stream is identical.
    """
    rb = rng.getrandbits
    alphabet = _TEXT_ALPHABET
    n = len(alphabet)
    k = n.bit_length()
    out = bytearray(count)
    for i in range(count):
        r = rb(k)
        while r >= n:
            r = rb(k)
        out[i] = alphabet[r]
    return out


def _ascii_text(rng: random.Random) -> bytes:
    return bytes(_text_chars(rng, BLOCK_BYTES))


def _utf16_text(rng: random.Random) -> bytes:
    chars = _text_chars(rng, BLOCK_BYTES // 2)
    out = bytearray(BLOCK_BYTES)
    out[::2] = chars
    return bytes(out)


def _sparse64(rng: random.Random) -> bytes:
    """A few live 64-bit words in a zero block."""
    out = bytearray(BLOCK_BYTES)
    for _ in range(rng.randrange(1, 4)):
        slot = rng.randrange(BLOCK_BYTES // 8) * 8
        out[slot : slot + 8] = rng.randbytes(8)
    return bytes(out)


def _barely_rle(rng: random.Random) -> bytes:
    """High-entropy records with exactly two 3-byte zero gaps.

    Two 3-byte runs free ``2 * 17 = 34`` bits — the precise minimum the
    4-byte COP target needs.  Algorithms chasing 50 % ratios see these
    blocks as incompressible.
    """
    out = bytearray(rng.randbytes(BLOCK_BYTES))
    first = rng.randrange(0, 14) * 2
    second = rng.randrange(first // 2 + 2, 30) * 2
    for start in (first, second):
        out[start : start + 3] = b"\x00\x00\x00"
    return bytes(out)


def _libquantum_state(rng: random.Random) -> bytes:
    """Quantum-register records: u64 basis state + f32 amplitude + u32 pad.

    Four 16-byte records per block leave four zero 32-bit words — about a
    10-15 % FPC ratio (the Fig. 1 libquantum curve: poorly compressible
    overall, yet most blocks yield a small amount) and exactly the zero
    runs COP's RLE needs.
    """
    out = bytearray()
    for _ in range(BLOCK_BYTES // 16):
        out += rng.randbytes(8)  # basis state: high entropy
        out += struct.pack("<f", rng.uniform(-1.0, 1.0))  # amplitude
        out += b"\x00\x00\x00\x00"  # padding word
    return bytes(out)


def _record_struct(rng: random.Random) -> bytes:
    """16-byte records: pointer + small int + random payload."""
    base = (rng.getrandbits(20) << 28) | (0x55 << 40)
    out = bytearray()
    for _ in range(BLOCK_BYTES // 16):
        out += struct.pack("<Q", base + rng.getrandbits(20))
        out += struct.pack("<i", rng.getrandbits(10))
        out += rng.randbytes(4)
    return bytes(out)


def _random_bytes(rng: random.Random) -> bytes:
    return rng.randbytes(BLOCK_BYTES)


#: Registry of content archetypes by name.
COMPONENTS: dict[str, Callable[[random.Random], bytes]] = {
    "zeros": _zeros,
    "small_int32": _small_int32,
    "small_int64": _small_int64,
    "pointer64": _pointer64,
    "float64_pos": _float64_pos,
    "float64_mixed": _float64_mixed,
    "float32_pair": _float32_pair,
    "ascii_text": _ascii_text,
    "utf16_text": _utf16_text,
    "sparse64": _sparse64,
    "barely_rle": _barely_rle,
    "libquantum_state": _libquantum_state,
    "record_struct": _record_struct,
    "random_bytes": _random_bytes,
}


def generate_block(component: str, rng: random.Random) -> bytes:
    """Generate one 64-byte block of the named archetype."""
    try:
        generator = COMPONENTS[component]
    except KeyError:
        raise KeyError(
            f"unknown component {component!r}; known: {sorted(COMPONENTS)}"
        ) from None
    block = generator(rng)
    if len(block) != BLOCK_BYTES:
        raise AssertionError(f"component {component} produced {len(block)} bytes")
    return block
