"""Deterministic block contents keyed by (address, version).

Real programs keep data of one kind together (arrays, heaps, string pools),
so the archetype is chosen per *page* (4 KB) by a seeded hash of the page
number — all blocks of a page share an archetype, giving the spatial
compressibility correlation the paper's traces exhibit.  The block bytes
themselves are a deterministic function of (seed, address, version), where
the version counter advances every time the simulated program overwrites
the block, so re-reads return exactly what was written without storing
anything.
"""

from __future__ import annotations

import random

from repro.workloads.generators import COMPONENTS, generate_block
from repro.workloads.profiles import BenchmarkProfile

__all__ = ["BlockSource"]

_PAGE_BYTES = 4096


class BlockSource:
    """Content oracle for one benchmark profile."""

    def __init__(self, profile: BenchmarkProfile, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed
        weights = profile.weights()
        unknown = set(weights) - set(COMPONENTS)
        if unknown:
            raise KeyError(f"profile {profile.name} uses unknown components: {unknown}")
        self._names = list(weights)
        self._cumulative: list[float] = []
        total = 0.0
        for name in self._names:
            total += weights[name]
            self._cumulative.append(total)
        # component_of is a pure function of (seed, page); hot loops hit the
        # same pages over and over, so memoise rather than re-seed a Random.
        self._component_cache: dict[int, str] = {}

    def component_of(self, addr: int) -> str:
        """The archetype assigned to the page containing ``addr``."""
        page = addr // _PAGE_BYTES
        cached = self._component_cache.get(page)
        if cached is not None:
            return cached
        u = random.Random(f"{self.seed}|page|{page}").random()
        component = self._names[-1]
        for name, edge in zip(self._names, self._cumulative):
            if u <= edge:
                component = name
                break
        self._component_cache[page] = component
        return component

    def block(self, addr: int, version: int = 0) -> bytes:
        """The 64 bytes stored at ``addr`` after ``version`` overwrites."""
        component = self.component_of(addr)
        rng = random.Random(f"{self.seed}|block|{addr}|{version}")
        return generate_block(component, rng)
