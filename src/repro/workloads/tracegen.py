"""Synthetic L3-miss traces with interval structure.

The paper's methodology divides execution into intervals between
long-latency miss events; references within an epoch are independent and
overlappable.  The generator emits exactly that shape: each epoch carries
an instruction count (derived from the profile's MPKI) and a group of
miss addresses whose size follows the profile's memory-level parallelism.
Addresses follow a run-based spatial model: with probability ``locality``
the next miss continues the current sequential run (row-buffer-friendly),
otherwise it jumps to a random block of the footprint.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.compression.base import BLOCK_BYTES
from repro.workloads.profiles import BenchmarkProfile

__all__ = ["Access", "Epoch", "EpochArrays", "TraceGenerator"]


@dataclass(frozen=True)
class Access:
    """One L3 miss.  ``is_store`` marks the line dirty once resident."""

    addr: int
    is_store: bool


@dataclass(frozen=True)
class Epoch:
    """An interval: instructions executed, then one overlappable miss group."""

    instructions: int
    accesses: tuple[Access, ...]


@dataclass(frozen=True)
class EpochArrays:
    """Struct-of-arrays form of an epoch trace (the batch replay input).

    The per-object :class:`Epoch`/:class:`Access` stream is pleasant to
    generate and test against, but replaying it one attribute lookup at a
    time is what keeps the scalar simulator slow.  This flattens a whole
    trace into four parallel arrays:

    * ``instructions[e]`` — instruction count of epoch ``e`` (uint64);
    * ``starts`` — epoch-boundary offsets into the access arrays, length
      ``epochs + 1`` (uint64): epoch ``e`` owns accesses
      ``starts[e]:starts[e + 1]``;
    * ``addrs[i]`` / ``is_store[i]`` — the flattened miss stream.

    Round-tripping through :meth:`to_epochs` reproduces the original
    stream exactly (the parity suite leans on that).
    """

    instructions: np.ndarray
    starts: np.ndarray
    addrs: np.ndarray
    is_store: np.ndarray

    def __post_init__(self) -> None:
        if len(self.starts) != len(self.instructions) + 1:
            raise ValueError("starts must hold one boundary per epoch + 1")
        if len(self.addrs) != len(self.is_store):
            raise ValueError("addrs and is_store must align")
        if len(self.starts) and int(self.starts[-1]) != len(self.addrs):
            raise ValueError("final boundary must close the access stream")

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def accesses(self) -> int:
        return len(self.addrs)

    @classmethod
    def from_epochs(cls, epochs: Iterable[Epoch]) -> "EpochArrays":
        """Flatten an epoch stream (materialises the whole trace)."""
        instructions: list[int] = []
        starts: list[int] = [0]
        addrs: list[int] = []
        stores: list[bool] = []
        for epoch in epochs:
            instructions.append(epoch.instructions)
            for access in epoch.accesses:
                addrs.append(access.addr)
                stores.append(access.is_store)
            starts.append(len(addrs))
        return cls(
            instructions=np.asarray(instructions, dtype=np.uint64),
            starts=np.asarray(starts, dtype=np.uint64),
            addrs=np.asarray(addrs, dtype=np.uint64),
            is_store=np.asarray(stores, dtype=np.bool_),
        )

    def epoch_slice(self, index: int) -> tuple[int, int, int]:
        """``(instructions, lo, hi)`` for epoch ``index``."""
        return (
            int(self.instructions[index]),
            int(self.starts[index]),
            int(self.starts[index + 1]),
        )

    def to_epochs(self) -> Iterator[Epoch]:
        """Inverse of :meth:`from_epochs` (exact round trip)."""
        addrs = self.addrs.tolist()
        stores = self.is_store.tolist()
        bounds = self.starts.tolist()
        for index, instructions in enumerate(self.instructions.tolist()):
            lo, hi = bounds[index], bounds[index + 1]
            yield Epoch(
                int(instructions),
                tuple(
                    Access(addrs[i], stores[i]) for i in range(lo, hi)
                ),
            )


class TraceGenerator:
    """Seeded generator of epochs for one core running one benchmark."""

    def __init__(
        self,
        profile: BenchmarkProfile,
        seed: int = 0,
        footprint_blocks: int | None = None,
        base_addr: int = 0,
    ) -> None:
        self.profile = profile
        self.seed = seed
        self.base_addr = base_addr
        if footprint_blocks is None:
            footprint_blocks = profile.footprint_mb * (1 << 20) // BLOCK_BYTES
        self.footprint_blocks = footprint_blocks
        if self.footprint_blocks < 1:
            raise ValueError("footprint must hold at least one block")
        # String seeds hash deterministically across processes (unlike
        # tuple hashing, which random.Random rejects anyway).
        self._rng = random.Random(f"{seed}|trace|{profile.name}")
        self._cursor = 0  # current sequential-run position (block index)

    def _next_block(self) -> int:
        if self._rng.random() < self.profile.locality:
            self._cursor = (self._cursor + 1) % self.footprint_blocks
        else:
            self._cursor = self._rng.randrange(self.footprint_blocks)
        return self._cursor

    def _group_size(self) -> int:
        """Geometric group size with mean ``mlp`` (at least one miss)."""
        mean = max(self.profile.mlp, 1.0)
        p = 1.0 / mean
        size = 1
        while self._rng.random() > p:
            size += 1
            if size >= 8 * mean:  # tail clamp keeps epochs bounded
                break
        return size

    def epochs(self, count: int) -> Iterator[Epoch]:
        """Yield ``count`` epochs."""
        per_miss_instr = 1000.0 / max(self.profile.mpki, 1e-3)
        for _ in range(count):
            size = self._group_size()
            accesses = tuple(
                Access(
                    self.base_addr + self._next_block() * BLOCK_BYTES,
                    self._rng.random() < self.profile.write_fraction,
                )
                for _ in range(size)
            )
            instructions = max(1, round(per_miss_instr * size))
            yield Epoch(instructions, accesses)

    def epoch_arrays(self, count: int) -> EpochArrays:
        """``count`` epochs, flattened straight into struct-of-arrays form.

        Consumes the RNG in exactly the order :meth:`epochs` does (group
        size, then per access: block draw, then store draw), so a
        generator seeded identically produces the same trace through
        either method — ``epoch_arrays(n)`` equals
        ``EpochArrays.from_epochs(epochs(n))`` element for element,
        without materialising the per-object stream.
        """
        profile = self.profile
        per_miss_instr = 1000.0 / max(profile.mpki, 1e-3)
        rng_random = self._rng.random
        randrange = self._rng.randrange
        locality = profile.locality
        write_fraction = profile.write_fraction
        base = self.base_addr
        footprint = self.footprint_blocks
        mean = max(profile.mlp, 1.0)
        p = 1.0 / mean
        clamp = 8 * mean
        instructions: list[int] = []
        starts: list[int] = [0]
        addrs: list[int] = []
        stores: list[bool] = []
        addr_append = addrs.append
        store_append = stores.append
        cursor = self._cursor
        for _ in range(count):
            size = 1  # _group_size, inlined
            while rng_random() > p:
                size += 1
                if size >= clamp:
                    break
            for _ in range(size):
                if rng_random() < locality:  # _next_block, inlined
                    cursor = (cursor + 1) % footprint
                else:
                    cursor = randrange(footprint)
                addr_append(base + cursor * BLOCK_BYTES)
                store_append(rng_random() < write_fraction)
            instructions.append(max(1, round(per_miss_instr * size)))
            starts.append(len(addrs))
        self._cursor = cursor
        return EpochArrays(
            instructions=np.asarray(instructions, dtype=np.uint64),
            starts=np.asarray(starts, dtype=np.uint64),
            addrs=np.asarray(addrs, dtype=np.uint64),
            is_store=np.asarray(stores, dtype=np.bool_),
        )

    def sample_blocks(self, count: int, source_seed: int = 0) -> Iterator[int]:
        """Addresses only — used by the compressibility experiments."""
        for _ in range(count):
            yield self.base_addr + self._next_block() * BLOCK_BYTES
