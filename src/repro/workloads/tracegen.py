"""Synthetic L3-miss traces with interval structure.

The paper's methodology divides execution into intervals between
long-latency miss events; references within an epoch are independent and
overlappable.  The generator emits exactly that shape: each epoch carries
an instruction count (derived from the profile's MPKI) and a group of
miss addresses whose size follows the profile's memory-level parallelism.
Addresses follow a run-based spatial model: with probability ``locality``
the next miss continues the current sequential run (row-buffer-friendly),
otherwise it jumps to a random block of the footprint.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.compression.base import BLOCK_BYTES
from repro.workloads.profiles import BenchmarkProfile

__all__ = ["Access", "Epoch", "TraceGenerator"]


@dataclass(frozen=True)
class Access:
    """One L3 miss.  ``is_store`` marks the line dirty once resident."""

    addr: int
    is_store: bool


@dataclass(frozen=True)
class Epoch:
    """An interval: instructions executed, then one overlappable miss group."""

    instructions: int
    accesses: tuple[Access, ...]


class TraceGenerator:
    """Seeded generator of epochs for one core running one benchmark."""

    def __init__(
        self,
        profile: BenchmarkProfile,
        seed: int = 0,
        footprint_blocks: int | None = None,
        base_addr: int = 0,
    ) -> None:
        self.profile = profile
        self.seed = seed
        self.base_addr = base_addr
        if footprint_blocks is None:
            footprint_blocks = profile.footprint_mb * (1 << 20) // BLOCK_BYTES
        self.footprint_blocks = footprint_blocks
        if self.footprint_blocks < 1:
            raise ValueError("footprint must hold at least one block")
        # String seeds hash deterministically across processes (unlike
        # tuple hashing, which random.Random rejects anyway).
        self._rng = random.Random(f"{seed}|trace|{profile.name}")
        self._cursor = 0  # current sequential-run position (block index)

    def _next_block(self) -> int:
        if self._rng.random() < self.profile.locality:
            self._cursor = (self._cursor + 1) % self.footprint_blocks
        else:
            self._cursor = self._rng.randrange(self.footprint_blocks)
        return self._cursor

    def _group_size(self) -> int:
        """Geometric group size with mean ``mlp`` (at least one miss)."""
        mean = max(self.profile.mlp, 1.0)
        p = 1.0 / mean
        size = 1
        while self._rng.random() > p:
            size += 1
            if size >= 8 * mean:  # tail clamp keeps epochs bounded
                break
        return size

    def epochs(self, count: int) -> Iterator[Epoch]:
        """Yield ``count`` epochs."""
        per_miss_instr = 1000.0 / max(self.profile.mpki, 1e-3)
        for _ in range(count):
            size = self._group_size()
            accesses = tuple(
                Access(
                    self.base_addr + self._next_block() * BLOCK_BYTES,
                    self._rng.random() < self.profile.write_fraction,
                )
                for _ in range(size)
            )
            instructions = max(1, round(per_miss_instr * size))
            yield Epoch(instructions, accesses)

    def sample_blocks(self, count: int, source_seed: int = 0) -> Iterator[int]:
        """Addresses only — used by the compressibility experiments."""
        for _ in range(count):
            yield self.base_addr + self._next_block() * BLOCK_BYTES
