"""Frequent pattern compression (Alameldeen & Wood, ISCA 2004).

FPC tags every 32-bit word of the block with a 3-bit prefix naming one of
seven frequent patterns (or "uncompressed"), followed by a variable-width
payload.  The fixed ``16 * 3 = 48`` bits of prefix metadata per block are
exactly why the paper finds FPC weak at COP's low target ratios: to free 34
bits, FPC must extract 82 bits of redundancy (Section 3.2) — RLE needs far
less.  We implement FPC as the paper's comparison algorithm (Fig. 1 and the
FPC series of Figs. 8-9).

Pattern set (per 32-bit word, little-endian):

====== ============================================= ============
prefix pattern                                       payload bits
====== ============================================= ============
000    zero word                                     0
001    4-bit sign-extended                           4
010    8-bit sign-extended                           8
011    16-bit sign-extended                          16
100    lower halfword zero (upper halfword stored)   16
101    two halfwords, each a sign-extended byte      16
110    word of repeated bytes                        8
111    uncompressed word                             32
====== ============================================= ============
"""

from __future__ import annotations

from typing import Optional

from repro._bits import Bits, BitReader, BitWriter, bytes_to_int, int_to_bytes
from repro.compression.base import BLOCK_BYTES, CompressionScheme, check_block

__all__ = ["FPCCompressor"]

_WORD_BYTES = 4
_WORD_MASK = (1 << (8 * _WORD_BYTES)) - 1
_NUM_WORDS = BLOCK_BYTES // _WORD_BYTES
_PREFIX_BITS = 3


def _sign_extend_fits(word: int, bits: int) -> bool:
    """Does the 32-bit word equal a ``bits``-bit value sign-extended?"""
    as_signed = word - (1 << 32) if word & 0x8000_0000 else word
    limit = 1 << (bits - 1)
    return -limit <= as_signed < limit


def _low_bits(word: int, bits: int) -> int:
    return word & ((1 << bits) - 1)


def _sign_extend(value: int, bits: int, out_bits: int) -> int:
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value & ((1 << out_bits) - 1)


class FPCCompressor(CompressionScheme):
    """Frequent pattern compression over sixteen 32-bit words."""

    name = "FPC"

    def classify(self, word: int) -> tuple[int, int, int]:
        """Return (prefix, payload_value, payload_bits) for one word."""
        if word == 0:
            return 0b000, 0, 0
        if _sign_extend_fits(word, 4):
            return 0b001, _low_bits(word, 4), 4
        if _sign_extend_fits(word, 8):
            return 0b010, _low_bits(word, 8), 8
        if _sign_extend_fits(word, 16):
            return 0b011, _low_bits(word, 16), 16
        if word & 0xFFFF == 0:
            return 0b100, word >> 16, 16
        low, high = word & 0xFFFF, word >> 16
        if _sign_extend_fits_16(low) and _sign_extend_fits_16(high):
            return 0b101, (low & 0xFF) | ((high & 0xFF) << 8), 16
        b = word & 0xFF
        if word == b * 0x01010101:
            return 0b110, b, 8
        return 0b111, word, 32

    def compressed_size_bits(self, block: bytes) -> int:
        """Total FPC size of the block (prefixes + payloads), in bits.

        Exposed separately because Fig. 1 plots the distribution of
        achievable FPC compression ratios, not just a fit/no-fit flag.
        """
        check_block(block)
        total = 0
        for i in range(0, BLOCK_BYTES, _WORD_BYTES):
            word = bytes_to_int(block[i : i + _WORD_BYTES])
            _, _, bits = self.classify(word)
            total += _PREFIX_BITS + bits
        return total

    def compress(self, block: bytes, budget_bits: int) -> Optional[Bits]:
        check_block(block)
        writer = BitWriter()
        for i in range(0, BLOCK_BYTES, _WORD_BYTES):
            word = bytes_to_int(block[i : i + _WORD_BYTES])
            prefix, payload, bits = self.classify(word)
            writer.write(prefix, _PREFIX_BITS)
            writer.write(payload, bits)
        result = writer.getbits()
        if result.nbits > budget_bits:
            return None
        return result

    def decompress(self, payload: Bits) -> bytes:
        reader = BitReader(payload)
        out = bytearray()
        for _ in range(_NUM_WORDS):
            prefix = reader.read(_PREFIX_BITS)
            if prefix == 0b000:
                word = 0
            elif prefix == 0b001:
                word = _sign_extend(reader.read(4), 4, 32)
            elif prefix == 0b010:
                word = _sign_extend(reader.read(8), 8, 32)
            elif prefix == 0b011:
                word = _sign_extend(reader.read(16), 16, 32)
            elif prefix == 0b100:
                word = (reader.read(16) << 16) & _WORD_MASK
            elif prefix == 0b101:
                pair = reader.read(16)
                low = _sign_extend(pair & 0xFF, 8, 16)
                high = _sign_extend(pair >> 8, 8, 16)
                word = (low | (high << 16)) & _WORD_MASK
            elif prefix == 0b110:
                word = reader.read(8) * 0x01010101
            else:
                word = reader.read(32)
            out += int_to_bytes(word, _WORD_BYTES)
        # Trailing bits (if any) are codec padding to the SECDED capacity.
        return bytes(out)


def _sign_extend_fits_16(half: int) -> bool:
    """Does the 16-bit halfword equal a sign-extended byte?"""
    as_signed = half - (1 << 16) if half & 0x8000 else half
    return -128 <= as_signed < 128
