"""The COP combined (hybrid) compression approach.

Every compressed block spends :data:`~repro.compression.base.SCHEME_TAG_BITS`
(two) bits naming the scheme that produced it, so the decompressor can
dispatch without side information.  The paper's evaluated hybrids are:

* 4-byte ECC target — TXT + MSB + RLE ("the combined approach is highly
  effective and able to compress 94% of blocks on average", Fig. 9);
* 8-byte ECC target — MSB + RLE (TXT cannot free 66 bits; FPC is excluded
  because RLE "generally outperforms FPC and has a simpler hardware
  implementation").

Scheme order is first-fit.  For the binary fits/does-not-fit decision COP
makes, first-fit equals best-of; we order TXT, MSB, RLE so the cheapest
decoder wins ties.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro._bits import Bits, BitReader, BitWriter
from repro.compression.base import (
    SCHEME_TAG_BITS,
    CompressionScheme,
    check_block,
    payload_budget,
)
from repro.compression.msb import MSBCompressor
from repro.compression.rle import RLECompressor
from repro.compression.txt import TextCompressor

__all__ = ["CombinedCompressor", "cop_scheme_suite", "cop_combined_compressor"]


class CombinedCompressor(CompressionScheme):
    """Dispatches between up to ``2**SCHEME_TAG_BITS`` schemes via a tag."""

    name = "COMBINED"

    def __init__(self, schemes: Sequence[CompressionScheme]) -> None:
        if not 1 <= len(schemes) <= (1 << SCHEME_TAG_BITS):
            raise ValueError(
                f"combined compressor supports 1..{1 << SCHEME_TAG_BITS} "
                f"schemes, got {len(schemes)}"
            )
        self.schemes = tuple(schemes)
        self.name = "+".join(s.name for s in self.schemes)

    def compress(self, block: bytes, budget_bits: int) -> Optional[Bits]:
        """First-fit over member schemes; payload includes the 2-bit tag."""
        check_block(block)
        inner_budget = budget_bits - SCHEME_TAG_BITS
        for tag, scheme in enumerate(self.schemes):
            inner = scheme.compress(block, inner_budget)
            if inner is None:
                continue
            writer = BitWriter()
            writer.write(tag, SCHEME_TAG_BITS)
            writer.write(inner.value, inner.nbits)
            return writer.getbits()
        return None

    def decompress(self, payload: Bits) -> bytes:
        reader = BitReader(payload)
        tag = reader.read(SCHEME_TAG_BITS)
        if tag >= len(self.schemes):
            raise ValueError(f"scheme tag {tag} names no configured scheme")
        inner = Bits(
            payload.value >> SCHEME_TAG_BITS, payload.nbits - SCHEME_TAG_BITS
        )
        return self.schemes[tag].decompress(inner)


def cop_scheme_suite(ecc_bytes: int) -> dict[str, CompressionScheme]:
    """The individual schemes evaluated at a given ECC budget.

    Returns an ordered mapping name -> scheme configured for the budget
    (MSB compare width, RLE threshold).  TXT appears only when it can free
    the budget, reproducing its absence from Fig. 8.
    """
    budget = payload_budget(ecc_bytes)
    min_free = 8 * ecc_bytes + SCHEME_TAG_BITS
    # MSB compare width: 7 reduced words must free ecc bits + tag.
    compare_bits = -(-min_free // 7)  # ceil
    suite: dict[str, CompressionScheme] = {}
    txt = TextCompressor()
    if txt.compressed_bits <= budget:
        suite["TXT"] = txt
    suite["MSB"] = MSBCompressor(compare_bits=compare_bits, shifted=True)
    suite["RLE"] = RLECompressor(min_free_bits=min_free)
    return suite


def cop_combined_compressor(ecc_bytes: int) -> CombinedCompressor:
    """The paper's hybrid for a 4- or 8-byte ECC budget."""
    return CombinedCompressor(list(cop_scheme_suite(ecc_bytes).values()))
