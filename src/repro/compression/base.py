"""Common interface for COP's block compression schemes.

Budget accounting follows Section 3.2 exactly: to free ``E`` bytes of ECC
from a 512-bit block while reserving the 2-bit scheme selector used by the
combined approach, a scheme's payload must fit in
``512 - 8*E - 2`` bits (:func:`payload_budget`).  For the paper's preferred
4-byte target that is 478 bits ("freeing 34 bits overall"); for the 8-byte
target it is 446 bits.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro._bits import Bits

__all__ = [
    "BLOCK_BYTES",
    "BLOCK_BITS",
    "SCHEME_TAG_BITS",
    "payload_budget",
    "CompressionScheme",
    "check_block",
]

#: Memory blocks are cache-line sized throughout the paper.
BLOCK_BYTES = 64
BLOCK_BITS = 8 * BLOCK_BYTES

#: The combined approach spends two bits of every compressed block to name
#: the scheme that produced it ("we increase the target compression ratio by
#: 2 bits ... to allow COP to combine compression schemes").
SCHEME_TAG_BITS = 2


def payload_budget(ecc_bytes: int) -> int:
    """Maximum scheme payload bits when freeing ``ecc_bytes`` per block."""
    if ecc_bytes <= 0 or 8 * ecc_bytes + SCHEME_TAG_BITS >= BLOCK_BITS:
        raise ValueError(f"unusable ECC budget {ecc_bytes} bytes")
    return BLOCK_BITS - 8 * ecc_bytes - SCHEME_TAG_BITS


def check_block(block: bytes) -> bytes:
    """Validate a 64-byte block argument."""
    if len(block) != BLOCK_BYTES:
        raise ValueError(f"expected {BLOCK_BYTES}-byte block, got {len(block)}")
    return block


class CompressionScheme(abc.ABC):
    """A single exact compression scheme.

    Implementations are *parameterised at construction* for one target
    (e.g. the MSB compare width, or RLE's freed-bit threshold) so that the
    decompressor needs no side information beyond the payload itself — the
    property that lets COP store nothing but data + ECC in DRAM.
    """

    #: Short scheme name used in reports ("MSB", "RLE", "TXT", "FPC", ...).
    name: str = "?"

    @abc.abstractmethod
    def compress(self, block: bytes, budget_bits: int) -> Optional[Bits]:
        """Compress ``block`` into at most ``budget_bits`` payload bits.

        Returns ``None`` when the block cannot be represented within the
        budget (the block is *incompressible* under this scheme).
        """

    @abc.abstractmethod
    def decompress(self, payload: Bits) -> bytes:
        """Exactly invert :meth:`compress`.  Returns the 64-byte block.

        Raises ``ValueError`` for malformed payloads.
        """

    def compressible(self, block: bytes, budget_bits: int) -> bool:
        """Convenience predicate used by the compressibility experiments."""
        return self.compress(block, budget_bits) is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
