"""Text compression (Section 3.2.4).

ASCII is a 7-bit encoding stored one character per byte, so a block of pure
ASCII text has a zero MSB in all 64 bytes.  Dropping those MSBs frees 64
bits — comfortably more than the 34 the 4-byte target needs (the paper's
"theoretically free 62 bits" counts the 2-bit scheme tag).  UTF-16 text
whose characters fall in the ASCII range compresses the same way since its
padding bytes are zero (and zero has a zero MSB).

The scheme cannot reach the 8-byte target (it would need 66 freed bits), so
the paper's Fig. 8 omits TXT and Fig. 9 includes it — our budget check
reproduces that automatically.
"""

from __future__ import annotations

from typing import Optional

from repro._bits import Bits, BitReader, BitWriter
from repro.compression.base import BLOCK_BYTES, CompressionScheme, check_block

__all__ = ["TextCompressor"]


class TextCompressor(CompressionScheme):
    """Drop the (zero) MSB of every byte of an all-ASCII block."""

    name = "TXT"

    #: Payload size when compressible: 64 seven-bit characters.
    compressed_bits = 7 * BLOCK_BYTES

    def compress(self, block: bytes, budget_bits: int) -> Optional[Bits]:
        check_block(block)
        if self.compressed_bits > budget_bits:
            return None
        if any(byte & 0x80 for byte in block):
            return None
        writer = BitWriter()
        for byte in block:
            writer.write(byte, 7)
        return writer.getbits()

    def decompress(self, payload: Bits) -> bytes:
        # Trailing bits beyond compressed_bits are codec padding.
        if payload.nbits < self.compressed_bits:
            raise ValueError(
                f"TXT payload must be at least {self.compressed_bits} bits, "
                f"got {payload.nbits}"
            )
        reader = BitReader(payload)
        return bytes(reader.read(7) for _ in range(BLOCK_BYTES))
