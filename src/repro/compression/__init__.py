"""Block-compression substrate (Section 3.2 of the paper).

COP does not chase high compression ratios: it only needs to free 4 (or 8)
bytes plus a 2-bit scheme selector from every 64-byte block.  This package
implements the paper's schemes bit-exactly:

* :class:`~repro.compression.msb.MSBCompressor` — matching most-significant
  bits across 8-byte words (BDI-inspired), with the shifted comparison that
  skips the floating-point sign bit (Fig. 4).
* :class:`~repro.compression.rle.RLECompressor` — run-length encoding of
  2/3-byte runs of 0x00/0xFF with 7-bit run metadata (Fig. 5).
* :class:`~repro.compression.txt.TextCompressor` — ASCII blocks drop the
  zero MSB of every byte.
* :class:`~repro.compression.fpc.FPCCompressor` — frequent pattern
  compression, the paper's comparison algorithm (Fig. 1, Figs. 8-9).
* :class:`~repro.compression.bdi.BDICompressor` — full base-delta-immediate
  for background comparisons and ablations.
* :class:`~repro.compression.combined.CombinedCompressor` — the COP hybrid
  with a 2-bit scheme tag (TXT+MSB+RLE at the 4-byte target, MSB+RLE at the
  8-byte target).

All compressors share the :class:`~repro.compression.base.CompressionScheme`
interface and are exact: ``decompress(compress(block)) == block``.
"""

from repro.compression.base import (
    BLOCK_BITS,
    BLOCK_BYTES,
    SCHEME_TAG_BITS,
    CompressionScheme,
    payload_budget,
)
from repro.compression.bdi import BDICompressor
from repro.compression.combined import (
    CombinedCompressor,
    cop_combined_compressor,
    cop_scheme_suite,
)
from repro.compression.fpc import FPCCompressor
from repro.compression.msb import MSBCompressor
from repro.compression.rle import RLECompressor
from repro.compression.txt import TextCompressor

__all__ = [
    "BLOCK_BYTES",
    "BLOCK_BITS",
    "SCHEME_TAG_BITS",
    "payload_budget",
    "CompressionScheme",
    "MSBCompressor",
    "RLECompressor",
    "TextCompressor",
    "FPCCompressor",
    "BDICompressor",
    "CombinedCompressor",
    "cop_combined_compressor",
    "cop_scheme_suite",
]
