"""MSB compression (Section 3.2.1).

A simplification of base-delta-immediate: instead of computing deltas, COP
checks whether a group of most-significant bits matches across all eight
8-byte words of the block.  If it does, those bits are stored once (inside
the first word, which is kept verbatim) and dropped from the other seven.

Two refinements from the paper:

* **Compare width** — 5 bits at the 4-byte target frees ``7 * 5 = 35`` bits
  (32 ECC + 2 tag + 1 spare); 10 bits at the 8-byte target frees 70.
* **Shifted comparison** — floating-point data defeats a naive MSB match
  because the IEEE-754 sign bit sits above the exponent; mixed-sign values
  with similar magnitudes share exponent bits but not bit 63.  Shifting the
  compared field down by one bit (ignoring the sign) recovers those blocks
  (Fig. 4).  Each word keeps its own sign bit verbatim.
"""

from __future__ import annotations

from typing import Optional

from repro._bits import Bits, BitReader, BitWriter, bytes_to_int, int_to_bytes
from repro.compression.base import BLOCK_BYTES, CompressionScheme, check_block

__all__ = ["MSBCompressor"]

_WORD_BYTES = 8
_WORD_BITS = 64
_WORD_MASK = (1 << _WORD_BITS) - 1
_NUM_WORDS = BLOCK_BYTES // _WORD_BYTES


class MSBCompressor(CompressionScheme):
    """Matching-MSB compression over eight 8-byte words.

    Parameters
    ----------
    compare_bits:
        Width of the matched MSB field.  The paper uses 5 for the 4-byte
        ECC target and scales it up (we use 10) for the 8-byte target.
    shifted:
        When True the compared field skips the top (sign) bit — the
        floating-point optimisation of Fig. 4.
    """

    name = "MSB"

    def __init__(self, compare_bits: int = 5, shifted: bool = True) -> None:
        if not 1 <= compare_bits <= _WORD_BITS - 1:
            raise ValueError(f"compare_bits out of range: {compare_bits}")
        if shifted and compare_bits > _WORD_BITS - 1:
            raise ValueError("shifted comparison cannot cover the full word")
        self.compare_bits = compare_bits
        self.shifted = shifted
        #: Lowest bit index of the compared field within each 64-bit word.
        self.field_start = (_WORD_BITS - compare_bits) - (1 if shifted else 0)
        self._field_mask = ((1 << compare_bits) - 1) << self.field_start
        #: Payload size when compressible: first word verbatim + 7 reduced.
        self.compressed_bits = _WORD_BITS + (_NUM_WORDS - 1) * (
            _WORD_BITS - compare_bits
        )

    def _words(self, block: bytes) -> list[int]:
        return [
            bytes_to_int(block[i : i + _WORD_BYTES])
            for i in range(0, BLOCK_BYTES, _WORD_BYTES)
        ]

    def _strip_field(self, word: int) -> int:
        """Remove the compared field, closing the gap."""
        low = word & ((1 << self.field_start) - 1)
        high = word >> (self.field_start + self.compare_bits)
        return (low | (high << self.field_start)) & _WORD_MASK

    def _insert_field(self, reduced: int, field: int) -> int:
        """Re-insert the shared field into a reduced word."""
        low = reduced & ((1 << self.field_start) - 1)
        high = reduced >> self.field_start
        return (
            low
            | (field << self.field_start)
            | (high << (self.field_start + self.compare_bits))
        ) & _WORD_MASK

    def compress(self, block: bytes, budget_bits: int) -> Optional[Bits]:
        check_block(block)
        if self.compressed_bits > budget_bits:
            return None
        words = self._words(block)
        field = (words[0] & self._field_mask) >> self.field_start
        for word in words[1:]:
            if (word & self._field_mask) >> self.field_start != field:
                return None
        writer = BitWriter()
        writer.write(words[0], _WORD_BITS)
        for word in words[1:]:
            writer.write(self._strip_field(word), _WORD_BITS - self.compare_bits)
        return writer.getbits()

    def decompress(self, payload: Bits) -> bytes:
        # Trailing bits beyond compressed_bits are codec padding.
        if payload.nbits < self.compressed_bits:
            raise ValueError(
                f"MSB payload must be at least {self.compressed_bits} bits, "
                f"got {payload.nbits}"
            )
        reader = BitReader(payload)
        first = reader.read(_WORD_BITS)
        field = (first & self._field_mask) >> self.field_start
        words = [first]
        for _ in range(_NUM_WORDS - 1):
            reduced = reader.read(_WORD_BITS - self.compare_bits)
            words.append(self._insert_field(reduced, field))
        return b"".join(int_to_bytes(w, _WORD_BYTES) for w in words)
