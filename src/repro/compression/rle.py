"""Run-length encoding (Section 3.2.3, Fig. 5).

COP's RLE extracts runs of all-zero or all-one *bytes*.  Each encoded run
costs exactly 7 metadata bits:

* 1 bit — run value (0x00 vs 0xFF bytes),
* 1 bit — run length (2 vs 3 bytes),
* 5 bits — the 16-bit-word offset (0..31) where the run begins.

A 2-byte run therefore frees ``16 - 7 = 9`` bits and a 3-byte run frees
``24 - 7 = 17``.  The encoder emits runs greedily (left to right, longest
first) and *stops as soon as the freed total reaches the scheme threshold*
(34 bits at the 4-byte target: 32 ECC + 2 tag; 66 at the 8-byte target).
The decompressor replays the identical stop rule: it keeps consuming 7-bit
metadata chunks, summing the bits each one frees, until the threshold is
reached — which is how COP knows where metadata ends and data begins
without storing a run count.
"""

from __future__ import annotations

from typing import Optional

from repro._bits import Bits, BitReader, BitWriter
from repro.compression.base import BLOCK_BYTES, CompressionScheme, check_block

__all__ = ["RLECompressor", "Run"]

_OFFSET_BITS = 5  # 32 possible 16-bit-word offsets in a 64-byte block
_META_BITS = 7


class Run:
    """One encoded run: ``length`` bytes of ``0x00`` or ``0xFF`` at ``offset``."""

    __slots__ = ("offset", "length", "ones")

    def __init__(self, offset: int, length: int, ones: bool) -> None:
        if offset % 2 or not 0 <= offset < BLOCK_BYTES:
            raise ValueError(f"run offset must be an even byte offset: {offset}")
        if length not in (2, 3):
            raise ValueError(f"run length must be 2 or 3: {length}")
        self.offset = offset
        self.length = length
        self.ones = ones

    @property
    def freed_bits(self) -> int:
        """Net bits freed: run bytes removed minus 7 metadata bits."""
        return 8 * self.length - _META_BITS

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        value = "FF" if self.ones else "00"
        return f"Run(offset={self.offset}, length={self.length}, value={value})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Run)
            and (self.offset, self.length, self.ones)
            == (other.offset, other.length, other.ones)
        )


class RLECompressor(CompressionScheme):
    """COP run-length encoding with a fixed freed-bit threshold.

    Parameters
    ----------
    min_free_bits:
        The encoder emits runs until at least this many bits are freed; the
        decoder replays the same rule.  34 for the 4-byte ECC target, 66
        for the 8-byte target.
    """

    name = "RLE"

    def __init__(self, min_free_bits: int = 34) -> None:
        if min_free_bits < 1:
            raise ValueError("min_free_bits must be positive")
        self.min_free_bits = min_free_bits

    # -- encoding ------------------------------------------------------------

    def find_runs(self, block: bytes) -> list[Run]:
        """Greedy left-to-right scan, preferring 3-byte runs.

        Stops as soon as the freed-bit threshold is met.  Runs start on even
        byte offsets (the 5-bit pointer addresses 16-bit words) but may end
        on odd offsets; the next candidate offset is the next even byte at
        or after the run's end.
        """
        check_block(block)
        runs: list[Run] = []
        freed = 0
        offset = 0
        while offset < BLOCK_BYTES - 1 and freed < self.min_free_bits:
            b0, b1 = block[offset], block[offset + 1]
            if b0 == b1 and b0 in (0x00, 0xFF):
                length = 2
                if offset + 2 < BLOCK_BYTES and block[offset + 2] == b0:
                    length = 3
                run = Run(offset, length, ones=(b0 == 0xFF))
                runs.append(run)
                freed += run.freed_bits
                # Next run must start on an even byte at/after run end.
                offset += length + (length % 2)
            else:
                offset += 2
        return runs if freed >= self.min_free_bits else []

    def compress(self, block: bytes, budget_bits: int) -> Optional[Bits]:
        check_block(block)
        runs = self.find_runs(block)
        if not runs:
            return None
        writer = BitWriter()
        removed = set()
        for run in runs:
            writer.write(1 if run.ones else 0, 1)
            writer.write(1 if run.length == 3 else 0, 1)
            writer.write(run.offset // 2, _OFFSET_BITS)
            removed.update(range(run.offset, run.offset + run.length))
        for index, byte in enumerate(block):
            if index not in removed:
                writer.write(byte, 8)
        payload = writer.getbits()
        if payload.nbits > budget_bits:
            # Cannot happen when min_free_bits >= 512 - budget, but guard
            # against mismatched construction parameters.
            return None
        return payload

    # -- decoding ------------------------------------------------------------

    def read_metadata(self, reader: BitReader) -> list[Run]:
        """Consume 7-bit chunks until the freed-bit threshold is reached."""
        runs: list[Run] = []
        freed = 0
        while freed < self.min_free_bits:
            ones = bool(reader.read(1))
            length = 3 if reader.read(1) else 2
            offset = reader.read(_OFFSET_BITS) * 2
            run = Run(offset, length, ones)
            runs.append(run)
            freed += run.freed_bits
        return runs

    def decompress(self, payload: Bits) -> bytes:
        reader = BitReader(payload)
        runs = self.read_metadata(reader)
        removed: dict[int, int] = {}
        for run in runs:
            fill = 0xFF if run.ones else 0x00
            for index in range(run.offset, run.offset + run.length):
                if index in removed or index >= BLOCK_BYTES:
                    raise ValueError("overlapping or out-of-range RLE runs")
                removed[index] = fill
        out = bytearray(BLOCK_BYTES)
        for index in range(BLOCK_BYTES):
            if index in removed:
                out[index] = removed[index]
            else:
                out[index] = reader.read(8)
        # Trailing bits (if any) are codec padding: stored blocks pad the
        # payload to the SECDED data capacity, and the run metadata already
        # told us exactly how many data bytes to consume.
        return bytes(out)
