"""Base-delta-immediate compression (Pekhimenko et al., PACT 2012).

BDI stores a block as one base value plus per-word deltas narrow enough to
fit in 1, 2 or 4 bytes.  The paper cites BDI as the inspiration for MSB
compression (Section 3.2.1) and notes it is engineered for ~2x ratios; we
implement the full algorithm for background comparisons and the ablation
benches (BDI vs MSB at COP's low target ratios).

Encodings, selected first-fit (4-bit encoding id):

==== ========== ===========
id   base bytes delta bytes
==== ========== ===========
0    (zeros block — no payload)
1    (one repeated 8-byte value)
2    8          1
3    8          2
4    8          4
5    4          1
6    4          2
7    2          1
15   (uncompressed)
==== ========== ===========
"""

from __future__ import annotations

from typing import Optional

from repro._bits import Bits, BitReader, BitWriter, bytes_to_int, int_to_bytes
from repro.compression.base import BLOCK_BYTES, CompressionScheme, check_block

__all__ = ["BDICompressor"]

_ID_BITS = 4
_BASE_DELTA = {2: (8, 1), 3: (8, 2), 4: (8, 4), 5: (4, 1), 6: (4, 2), 7: (2, 1)}


def _signed(value: int, bits: int) -> int:
    return value - (1 << bits) if value & (1 << (bits - 1)) else value


class BDICompressor(CompressionScheme):
    """Full base-delta-immediate with zero/repeat special cases."""

    name = "BDI"

    def _try_base_delta(
        self, block: bytes, base_bytes: int, delta_bytes: int
    ) -> Optional[list[int]]:
        """Return the delta list when every word fits, else None."""
        base = bytes_to_int(block[:base_bytes])
        limit = 1 << (8 * delta_bytes - 1)
        deltas = []
        for i in range(0, BLOCK_BYTES, base_bytes):
            word = bytes_to_int(block[i : i + base_bytes])
            delta = _signed(word, 8 * base_bytes) - _signed(base, 8 * base_bytes)
            if not -limit <= delta < limit:
                return None
            deltas.append(delta & ((1 << (8 * delta_bytes)) - 1))
        return deltas

    def compress(self, block: bytes, budget_bits: int) -> Optional[Bits]:
        check_block(block)
        writer = BitWriter()
        if block == bytes(BLOCK_BYTES):
            writer.write(0, _ID_BITS)
        elif block == block[:8] * (BLOCK_BYTES // 8):
            writer.write(1, _ID_BITS)
            writer.write_bytes(block[:8])
        else:
            for encoding, (base_bytes, delta_bytes) in _BASE_DELTA.items():
                size = _ID_BITS + 8 * base_bytes + 8 * delta_bytes * (
                    BLOCK_BYTES // base_bytes
                )
                if size > budget_bits:
                    continue
                deltas = self._try_base_delta(block, base_bytes, delta_bytes)
                if deltas is None:
                    continue
                writer.write(encoding, _ID_BITS)
                writer.write_bytes(block[:base_bytes])
                for delta in deltas:
                    writer.write(delta, 8 * delta_bytes)
                break
            else:
                return None
        payload = writer.getbits()
        return payload if payload.nbits <= budget_bits else None

    def decompress(self, payload: Bits) -> bytes:
        reader = BitReader(payload)
        encoding = reader.read(_ID_BITS)
        if encoding == 0:
            return bytes(BLOCK_BYTES)
        if encoding == 1:
            return reader.read_bytes(8) * (BLOCK_BYTES // 8)
        if encoding not in _BASE_DELTA:
            raise ValueError(f"unknown BDI encoding id {encoding}")
        base_bytes, delta_bytes = _BASE_DELTA[encoding]
        base = _signed(bytes_to_int(reader.read_bytes(base_bytes)), 8 * base_bytes)
        out = bytearray()
        mask = (1 << (8 * base_bytes)) - 1
        for _ in range(BLOCK_BYTES // base_bytes):
            delta = _signed(reader.read(8 * delta_bytes), 8 * delta_bytes)
            out += int_to_bytes((base + delta) & mask, base_bytes)
        # Trailing bits (if any) are codec padding to the SECDED capacity.
        return bytes(out)
