"""System configurations for the performance model.

``TABLE1_SYSTEM`` mirrors the paper's simulated machine (Table 1): 3.2 GHz
cores, a shared 4 MB 16-way L3, dual-channel DDR3-1600.  Experiments
default to ``SCALED_SYSTEM`` — the same machine shrunk 8x in LLC and
footprint so a pure-Python run finishes in seconds; all Fig. 10/11 results
are *relative* (normalized IPC, reduction fractions), which the uniform
scaling preserves.  Pass ``TABLE1_SYSTEM`` for full-size runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.dram import DDR3_1600, DRAMConfig

__all__ = ["SystemConfig", "TABLE1_SYSTEM", "SCALED_SYSTEM"]


@dataclass(frozen=True)
class SystemConfig:
    """Core + cache + memory organisation of the simulated machine."""

    cpu_ghz: float = 3.2
    cores: int = 4
    llc_bytes: int = 4 << 20
    llc_ways: int = 16
    dram: DRAMConfig = field(default_factory=lambda: DDR3_1600)
    #: Divider applied to per-benchmark footprints (keeps the
    #: footprint-to-LLC ratio of the paper's setup when scaling down).
    footprint_divider: int = 1
    #: Outstanding-miss limit per core (MSHRs).  Misses within an epoch
    #: overlap only up to this many at a time; 0 means unlimited (the
    #: pure interval-simulation assumption).
    mshrs: int = 16
    #: Replay traces through the batched (struct-of-arrays) engine.  The
    #: batch engine is bit-exact with the scalar loop — same stats, same
    #: timings, same trace events (docs/kernels.md, "Batched epoch
    #: replay") — it only changes how fast the answer arrives.
    use_batch: bool = False

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.cpu_ghz

    def cycles(self, ns: float) -> float:
        return ns * self.cpu_ghz


#: The configuration of Table 1.
TABLE1_SYSTEM = SystemConfig()

#: 8x-scaled configuration used by default in the experiment harness.
SCALED_SYSTEM = SystemConfig(llc_bytes=512 << 10, footprint_divider=8)
