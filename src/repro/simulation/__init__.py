"""Interval performance simulation (the paper's Section 4 methodology).

Execution is divided into intervals between long-latency (L3 miss) events;
within an interval the misses overlap, between intervals the core runs at
its perfect-L3 IPC.  :class:`~repro.simulation.system.MultiCoreSystem`
replays per-core epoch traces against a shared LLC, a protection-mode
memory controller and the DDR3 timing model, producing the normalized-IPC
comparison of Fig. 11 and (via an attached
:class:`~repro.reliability.parma.VulnerabilityTracker`) the residency data
behind Fig. 10.
"""

from repro.simulation.config import SCALED_SYSTEM, TABLE1_SYSTEM, SystemConfig
from repro.simulation.system import CoreResult, MultiCoreSystem, PerfResult

__all__ = [
    "SystemConfig",
    "TABLE1_SYSTEM",
    "SCALED_SYSTEM",
    "MultiCoreSystem",
    "PerfResult",
    "CoreResult",
]
