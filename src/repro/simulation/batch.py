"""Batched epoch replay: the struct-of-arrays fast path of the simulator.

:class:`BatchReplay` replays the same traces as the scalar
``MultiCoreSystem`` loop and is **bit-exact** with it — identical
:class:`~repro.simulation.system.PerfResult`, DRAM / controller / cache
stats, and trace events (the parity suite in ``tests/test_batch_sim.py``
and the ``make sim-parity-smoke`` byte-diff enforce this).  The speed
comes from three structural observations about the scalar loop:

Wave-deferred DRAM timing
    Within one MSHR wave every miss issues at the same ``issue_at`` and no
    LLC/controller *decision* depends on DRAM timings — only the epoch's
    ``stall_until`` does.  So the replay does all cache and controller
    bookkeeping inline (in exact scalar order), merely *recording* the
    DRAM requests, and services the whole wave at the wave boundary
    through :meth:`~repro.memory.dram.DRAMSystem.service_wave` — the
    vectorised FR-FCFS kernel that carries bank state across waves.
    Trace events are buffered in scalar order and flushed after timing
    resolves, so deferral never reorders or re-times an event.

Content-free fault-free accesses
    On the fault-free path ``decode(encode(x)) == x``: stored payload
    bits never reach an observable output.  Only a block's
    *classification* (compressible / alias) and the mode bookkeeping
    matter, so the engine calls the controller's ``fast_write`` /
    ``fast_read`` timing twins and skips content generation wherever the
    classification alone suffices.

Vectorised classification
    Contents are a pure function of ``(source, addr, version)``.  The
    :class:`ContentOracle` prefetches the first-touch classification for
    every unique trace address through the array kernels of
    :class:`~repro.kernels.BatchCodec` (``compressible_many`` /
    ``is_alias_many``) and resolves store-bumped versions lazily, keeping
    raw bytes only where COP-ER's content-dependent entry allocation
    needs them.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.codec import COPCodec
from repro.core.controller import ProtectionMode
from repro.kernels import BatchCodec, MemoizedCodec, blocks_to_array
from repro.workloads.blocks import BlockSource
from repro.workloads.tracegen import EpochArrays

__all__ = ["ContentOracle", "BatchReplay"]

#: Modes whose write path consults block content (classification).
_CONTENT_MODES = frozenset(
    {ProtectionMode.COP, ProtectionMode.COP_ER, ProtectionMode.MEMZIP}
)

#: Stand-in line payload; the batch path never reads cached bytes back.
_PLACEHOLDER = bytes(64)

#: Process-level classification store shared by every oracle.  Content is
#: a pure function of ``(profile, seed, addr, version)`` and a
#: classification additionally of the codec parameters, so entries are
#: valid for the life of the process — fig11-style sweeps that replay the
#: same traces under several protection modes classify each content once.
#: Entry: ``(compressible, alias-or-None, raw bytes for incompressible)``;
#: ``alias`` is filled in lazily by the first mode that needs it (from the
#: retained bytes), compressible blocks never alias.
_Entry = Tuple[bool, Optional[bool], Optional[bytes]]
_STORE: Dict[tuple, Dict[Tuple[int, int], _Entry]] = {}


class ContentOracle:
    """Classification of block contents without materialising them.

    Keyed by ``(source identity, addr, version)`` where source identity is
    ``(profile name, seed)`` — the full seed of a
    :class:`~repro.workloads.blocks.BlockSource` content stream, so cores
    sharing a PARSEC footprint share one classification (and, through
    ``_STORE``, so do successive runs inside one process).
    """

    def __init__(
        self,
        sources: Sequence[BlockSource],
        codec,
        mode: ProtectionMode,
    ) -> None:
        self.sources = list(sources)
        self.mode = mode
        if isinstance(codec, MemoizedCodec):
            codec = codec.codec
        self.codec: Optional[COPCodec] = codec
        self.batch = BatchCodec(codec) if codec is not None else None
        self._need_alias = mode is ProtectionMode.COP
        self._active = mode in _CONTENT_MODES and self.batch is not None
        fp = repr(codec.config) if codec is not None else ""
        #: Per-core view into the process-level store.
        self._stores: List[Dict[Tuple[int, int], _Entry]] = [
            _STORE.setdefault(
                (source.profile.name, source.seed, fp), {}
            )
            for source in self.sources
        ]

    @property
    def active(self) -> bool:
        return self._active

    def prefetch(self, addrs_per_core: Sequence[np.ndarray]) -> None:
        """Classify the first-touch (version 0) content of every address.

        One scalar content generation plus one *vectorised* classification
        per unique ``(source, addr)`` not already in the process store —
        the batch replacement for the per-populate scalar ``encode`` of
        the reference loop.
        """
        if not self._active:
            return
        by_store: Dict[int, Tuple[int, set]] = {}
        for core, addrs in enumerate(addrs_per_core):
            store = self._stores[core]
            entry = by_store.setdefault(id(store), (core, set()))
            entry[1].update(np.unique(addrs).tolist())
        batch = self.batch
        assert batch is not None
        for core, addr_set in by_store.values():
            store = self._stores[core]
            source = self.sources[core]
            todo = sorted(addr for addr in addr_set if (addr, 0) not in store)
            if not todo:
                continue
            blocks = [source.block(addr, 0) for addr in todo]
            array = blocks_to_array(blocks)
            compressible = batch.compressible_many(array)
            alias: np.ndarray = np.zeros(len(todo), dtype=bool)
            raw = np.nonzero(~compressible)[0]
            if self._need_alias and raw.size:
                alias[raw] = batch.is_alias_many(array[raw])
            need_alias = self._need_alias
            for i, addr in enumerate(todo):
                if compressible[i]:
                    store[(addr, 0)] = (True, False, None)
                else:
                    store[(addr, 0)] = (
                        False,
                        bool(alias[i]) if need_alias else None,
                        blocks[i],
                    )

    def kind(self, core_index: int, addr: int, version: int) -> Tuple[bool, bool]:
        """``(compressible, alias)`` for one content, classifying lazily.

        The lazy path (store-bumped versions) probes the *scalar*
        compressor — the classification the reference loop's ``encode``
        performs — so cached and fresh answers are identical by
        construction.
        """
        if not self._active:
            return (False, False)
        store = self._stores[core_index]
        key = (addr, version)
        entry = store.get(key)
        codec = self.codec
        assert codec is not None
        if entry is None:
            block = self.sources[core_index].block(addr, version)
            if (
                codec.compressor.compress(block, codec.config.capacity_bits)
                is not None
            ):
                entry = (True, False, None)
            else:
                entry = (
                    False,
                    codec.is_alias(block) if self._need_alias else None,
                    block,
                )
            store[key] = entry
        compressible, alias, block = entry
        if compressible:
            return (True, False)
        if not self._need_alias:
            return (False, False)
        if alias is None:
            assert block is not None
            alias = codec.is_alias(block)
            store[key] = (False, alias, block)
        return (False, alias)

    def take_bytes(self, core_index: int, addr: int, version: int) -> bytes:
        """The raw 64 bytes of one content (retained or regenerated)."""
        entry = self._stores[core_index].get((addr, version))
        if entry is not None and entry[2] is not None:
            return entry[2]
        return self.sources[core_index].block(addr, version)


class _Wave:
    """Deferred state of one MSHR wave (shared ``issue_at``)."""

    __slots__ = ("now_ns", "requests", "misses", "events")

    def __init__(self, now_ns: float) -> None:
        self.now_ns = now_ns
        #: DRAM requests in exact scalar issue order.
        self.requests: List[Tuple[int, bool]] = []
        #: Per miss: (data request idx, ecc request idxs, decompress ns,
        #: deferred "access" event payload or None).
        self.misses: List[Tuple[int, List[int], float, Optional[dict]]] = []
        #: Trace events in scalar order, flushed after timing resolves.
        self.events: List[Tuple[str, dict]] = []


class BatchReplay:
    """Replay a :class:`MultiCoreSystem`'s traces through the batch path.

    Mutates the system's cores, LLC, DRAM and protected memory exactly as
    the scalar loop would; the system then assembles the
    :class:`PerfResult` from that state as usual.
    """

    def __init__(self, system) -> None:
        self.system = system
        self.memory = system.memory
        self.llc = system.llc
        self.dram = system.dram
        self.obs = system.obs
        self.config = system.config
        self.tracker = system.tracker
        self.oracle = ContentOracle(
            system._sources, self.memory.codec, self.memory.mode
        )
        self._versions: Dict[int, int] = system._versions
        #: addr -> core whose source generated the current content bytes.
        self._writer: Dict[int, int] = {}
        self._cycle_ns = self.config.cycle_ns
        #: Only COP-ER's entry allocation ever consumes raw bytes.
        self._need_content = self.memory.mode is ProtectionMode.COP_ER
        self._obs_enabled = self.obs.enabled

    # -- main loop ---------------------------------------------------------

    def replay(self) -> None:
        system = self.system
        cores = system._cores
        with self.obs.profile.phase("system.run"), self.obs.trace.span(
            "system.run", cores=len(cores)
        ):
            arrays = [
                core.epochs
                if isinstance(core.epochs, EpochArrays)
                else EpochArrays.from_epochs(core.epochs)
                for core in cores
            ]
            self.oracle.prefetch([epochs.addrs for epochs in arrays])
            plans = [
                (
                    epochs.instructions.tolist(),
                    epochs.starts.tolist(),
                    epochs.addrs.tolist(),
                    epochs.is_store.tolist(),
                )
                for epochs in arrays
            ]
            cursors = [0] * len(cores)
            heap = [(0.0, i) for i in range(len(cores))]
            heapq.heapify(heap)
            while heap:
                _, index = heapq.heappop(heap)
                core = cores[index]
                instructions, starts, addrs, stores = plans[index]
                cursor = cursors[index]
                if cursor >= len(instructions):
                    core.done = True
                    continue
                cursors[index] = cursor + 1
                self._run_epoch(
                    index,
                    instructions[cursor],
                    addrs,
                    stores,
                    starts[cursor],
                    starts[cursor + 1],
                )
                heapq.heappush(heap, (core.time_ns, index))

    def _run_epoch(
        self,
        core_index: int,
        instructions: int,
        addrs: List[int],
        stores: List[bool],
        lo: int,
        hi: int,
    ) -> None:
        core = self.system._cores[core_index]
        config = self.config
        compute_ns = (instructions / core.perfect_ipc) * config.cycle_ns
        now_ns = core.time_ns + compute_ns

        stall_until = now_ns
        outstanding = 0
        mshrs = config.mshrs
        lookup = self.llc.lookup
        versions = self._versions
        versions_get = versions.get
        writer = self._writer
        miss = self._miss
        wave = _Wave(now_ns)
        for i in range(lo, hi):
            addr = addrs[i]
            line = lookup(addr)
            if line is not None:
                if stores[i]:
                    versions[addr] = versions_get(addr, 0) + 1
                    writer[addr] = core_index
                    line.data = _PLACEHOLDER
                    line.dirty = True
                continue
            if mshrs and outstanding >= mshrs:
                stall_until = self._flush_wave(wave, stall_until)
                outstanding = 0
                wave = _Wave(stall_until)
            miss(core_index, addr, stores[i], wave)
            outstanding += 1
        stall_until = self._flush_wave(wave, stall_until)

        core.time_ns = stall_until
        core.result.instructions += instructions
        core.result.compute_ns += compute_ns
        core.result.stall_ns += stall_until - now_ns
        core.result.epochs += 1

    # -- miss path ---------------------------------------------------------

    def _miss(
        self, core_index: int, addr: int, is_store: bool, wave: _Wave
    ) -> None:
        memory = self.memory
        llc = self.llc
        now_ns = wave.now_ns
        requests = wave.requests
        if addr not in memory.contents:
            self._populate(core_index, addr, wave)
        read = memory.fast_read(addr)
        if self.tracker is not None:
            self.tracker.on_read(addr, now_ns)

        data_idx = len(requests)
        requests.append((addr, False))
        ecc_idxs: List[int] = []
        for ecc_addr in read.ecc_reads:
            if llc.lookup(ecc_addr) is None:
                ecc_idxs.append(len(requests))
                requests.append((ecc_addr, False))
                eviction = llc.insert(ecc_addr, _PLACEHOLDER)
                if eviction is not None:
                    self._handle_eviction(core_index, eviction, wave)

        payload: Optional[dict] = None
        if self._obs_enabled:
            self.obs.profile.count("misses")
            payload = {
                "t_ns": round(now_ns, 3),
                "core": core_index,
                "addr": addr,
                "store": is_store,
                "mode": memory.mode.value,
                "compressed": read.compressed,
                "uncompressed": read.was_uncompressed,
                "corrected": read.corrected,
                "ecc_blocks": len(read.ecc_reads),
                "row_hit": None,  # patched at wave flush
                "latency_ns": None,  # patched at wave flush
            }
            wave.events.append(("access", payload))
        wave.misses.append(
            (
                data_idx,
                ecc_idxs,
                read.decompress_cycles * self._cycle_ns,
                payload,
            )
        )

        if is_store:
            self._versions[addr] = self._versions.get(addr, 0) + 1
            self._writer[addr] = core_index
        eviction = llc.insert(
            addr,
            _PLACEHOLDER,
            dirty=is_store,
            was_uncompressed=read.was_uncompressed,
        )
        if eviction is not None:
            self._handle_eviction(core_index, eviction, wave)

    def _populate(self, core_index: int, addr: int, wave: _Wave) -> None:
        versions = self._versions
        oracle = self.oracle
        memory = self.memory
        need_content = self._need_content
        version = versions.setdefault(addr, 0)
        compressible, alias = oracle.kind(core_index, addr, version)
        result = memory.fast_write(
            addr,
            compressible,
            alias,
            content=(
                (lambda v=version: oracle.take_bytes(core_index, addr, v))
                if need_content
                else None
            ),
            events=wave.events,
        )
        while not result.accepted:
            version += 1
            versions[addr] = version
            compressible, alias = oracle.kind(core_index, addr, version)
            result = memory.fast_write(
                addr,
                compressible,
                alias,
                content=(
                    (lambda v=version: oracle.take_bytes(core_index, addr, v))
                    if need_content
                    else None
                ),
                events=wave.events,
            )
        self._writer[addr] = core_index
        if self.tracker is not None:
            self.tracker.on_write(addr, 0.0, self.system._protected(result))

    # -- writeback path ----------------------------------------------------

    def _writeback(self, core_index: int, victim, wave: _Wave):
        memory = self.memory
        addr = victim.addr
        version = self._versions.get(addr, 0)
        writer = self._writer.get(addr, core_index)
        compressible, alias = self.oracle.kind(writer, addr, version)
        result = memory.fast_write(
            addr,
            compressible,
            alias,
            content=(
                (lambda: self.oracle.take_bytes(writer, addr, version))
                if self._need_content
                else None
            ),
            events=wave.events,
        )
        if self._obs_enabled:
            self.obs.profile.count("writebacks")
            wave.events.append(
                (
                    "writeback",
                    {
                        "t_ns": round(wave.now_ns, 3),
                        "core": core_index,
                        "addr": addr,
                        "accepted": result.accepted,
                        "compressed": result.compressed,
                        "ecc_blocks": len(result.ecc_writes),
                    },
                )
            )
        if not result.accepted:
            return self.llc.insert(addr, _PLACEHOLDER, dirty=True, alias=True)
        if self.tracker is not None:
            self.tracker.on_write(
                addr, wave.now_ns, self.system._protected(result)
            )
        wave.requests.append((addr, True))
        for ecc_addr in result.ecc_writes:
            line = self.llc.peek(ecc_addr)
            if line is not None:
                line.dirty = True
            else:
                wave.requests.append((ecc_addr, True))
        return None

    def _handle_eviction(self, core_index: int, eviction, wave: _Wave) -> None:
        steps = 0
        while eviction is not None:
            steps += 1
            if steps > self.llc.ways + 1:
                raise RuntimeError(
                    "eviction chain exceeded LLC associativity "
                    f"({self.llc.ways} ways)"
                )
            victim = eviction.line
            eviction = None
            if self.memory.is_metadata_addr(victim.addr):
                if victim.dirty:
                    wave.requests.append((victim.addr, True))
            elif victim.dirty or victim.alias:
                eviction = self._writeback(core_index, victim, wave)

    # -- wave flush --------------------------------------------------------

    def _flush_wave(self, wave: _Wave, stall_until: float) -> float:
        """Service the wave's DRAM requests and resolve deferred timing."""
        if wave.requests:
            _starts, completes, row_hits = self.dram.service_wave(
                wave.requests, wave.now_ns
            )
        else:
            completes, row_hits = [], []
        now_ns = wave.now_ns
        metrics = self.obs.metrics
        for data_idx, ecc_idxs, decompress_ns, payload in wave.misses:
            usable = completes[data_idx]
            for idx in ecc_idxs:
                complete = completes[idx]
                if complete > usable:
                    usable = complete
            usable += decompress_ns
            if usable > stall_until:
                stall_until = usable
            if payload is not None:
                latency_ns = usable - now_ns
                metrics.observe("system.miss_latency_ns", latency_ns)
                payload["row_hit"] = row_hits[data_idx]
                payload["latency_ns"] = round(latency_ns, 3)
        if self.obs.enabled:
            trace = self.obs.trace
            for name, payload in wave.events:
                trace.emit(name, **payload)
        return stall_until
