"""The multi-core interval simulator.

Each core replays its epoch trace: run ``instructions`` at the perfect-L3
IPC, then issue the epoch's miss group.  Misses first probe the shared LLC;
real misses go through the protection-mode controller, which may demand
extra ECC-region block accesses (COP-ER, ECC-Region baseline).  ECC blocks
are themselves cached in the LLC, competing with data — exactly the
paper's setup ("ECC metadata is cached in the L3").  Within a group,
DRAM requests are overlappable: the epoch's stall is the *maximum* request
completion, not the sum (interval simulation's core assumption).

Dirty evictions write back through the controller at the current time;
writebacks are buffered (they occupy DRAM banks but do not stall the
core).  A rejected writeback — an incompressible alias under plain COP —
re-pins the line in the LLC with its alias bit set.

Store semantics: a store to a block advances its content *version*; the
new bytes come from the benchmark's :class:`BlockSource`, so data written
back to memory keeps the benchmark's compressibility statistics fresh.

Cores are interleaved by simulated time (the core furthest behind runs
next), which serialises DRAM contention realistically without an event
queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.cache.cache import SetAssocCache
from repro.core.controller import ProtectedMemory
from repro.reliability.parma import VulnerabilityTracker
from repro.simulation.config import SystemConfig
from repro.workloads.blocks import BlockSource
from repro.workloads.tracegen import Epoch

__all__ = ["CoreResult", "PerfResult", "MultiCoreSystem"]


@dataclass
class CoreResult:
    instructions: int = 0
    compute_ns: float = 0.0
    stall_ns: float = 0.0
    epochs: int = 0

    @property
    def total_ns(self) -> float:
        return self.compute_ns + self.stall_ns


@dataclass(frozen=True)
class PerfResult:
    """Outcome of one simulation run."""

    cores: tuple[CoreResult, ...]
    cpu_ghz: float
    llc_hits: int
    llc_misses: int
    dram_reads: int
    dram_writes: int
    row_hit_rate: float

    @property
    def instructions(self) -> int:
        return sum(core.instructions for core in self.cores)

    @property
    def total_cycles(self) -> float:
        """Cycles until the last core finishes (the run's makespan).

        A run with no cores (or no epochs) has an empty makespan — report
        zero rather than raising, so degenerate traces flow through the
        ratio properties (which all guard against a zero denominator).
        """
        if not self.cores:
            return 0.0
        return max(core.total_ns for core in self.cores) * self.cpu_ghz

    @property
    def ipc(self) -> float:
        """System IPC: total instructions over the makespan."""
        return self.instructions / self.total_cycles if self.total_cycles else 0.0

    @property
    def core_ipcs(self) -> tuple[float, ...]:
        return tuple(
            core.instructions / (core.total_ns * self.cpu_ghz)
            if core.total_ns
            else 0.0
            for core in self.cores
        )


class _CoreState:
    __slots__ = ("epochs", "time_ns", "perfect_ipc", "result", "done")

    def __init__(self, epochs: Iterator[Epoch], perfect_ipc: float) -> None:
        self.epochs = epochs
        self.time_ns = 0.0
        self.perfect_ipc = perfect_ipc
        self.result = CoreResult()
        self.done = False


class MultiCoreSystem:
    """Replays per-core traces against one shared LLC + protected memory."""

    def __init__(
        self,
        memory: ProtectedMemory,
        traces: Sequence[Iterator[Epoch]],
        sources: Sequence[BlockSource],
        perfect_ipcs: Sequence[float],
        config: SystemConfig,
        tracker: Optional[VulnerabilityTracker] = None,
        obs=None,
    ) -> None:
        if not len(traces) == len(sources) == len(perfect_ipcs):
            raise ValueError("traces, sources and perfect_ipcs must align")
        self.memory = memory
        self.config = config
        self.tracker = tracker
        # One bundle for the whole system; default to the controller's so
        # a caller only has to enable observability in one place.
        self.obs = obs if obs is not None else memory.obs
        self.llc = SetAssocCache(config.llc_bytes, config.llc_ways, name="L3")
        from repro.memory.dram import DRAMSystem  # local to avoid cycle

        self.dram = DRAMSystem(config.dram, obs=self.obs)
        self._cores = [
            _CoreState(trace, ipc) for trace, ipc in zip(traces, perfect_ipcs)
        ]
        self._sources = list(sources)
        self._versions: dict[int, int] = {}

    # -- content management -----------------------------------------------

    def _content(self, core_index: int, addr: int) -> bytes:
        version = self._versions.get(addr, 0)
        return self._sources[core_index].block(addr, version)

    def _populate(self, core_index: int, addr: int, now_ns: float) -> None:
        """First touch: materialise the block in DRAM."""
        version = self._versions.setdefault(addr, 0)
        data = self._sources[core_index].block(addr, version)
        result = self.memory.write(addr, data)
        while not result.accepted:
            # The freshly generated block is an incompressible alias (odds
            # ~2e-7): nudge the version until a storable image appears.
            version += 1
            self._versions[addr] = version
            data = self._sources[core_index].block(addr, version)
            result = self.memory.write(addr, data)
        if self.tracker is not None:
            # The data existed in DRAM since program start: stamp t=0 so
            # its residency before this first read counts as vulnerable.
            self.tracker.on_write(addr, 0.0, self._protected(result))
        # Population is warm-up traffic; it does not occupy the DRAM model.

    def _protected(self, write_result) -> bool:
        from repro.core.controller import ProtectionMode

        mode = self.memory.mode
        if mode is ProtectionMode.UNPROTECTED:
            return False
        if mode is ProtectionMode.COP:
            return write_result.compressed
        return True  # COP-ER / ECC-Region / ECC-DIMM protect everything

    # -- writeback path ------------------------------------------------------

    def _writeback(self, core_index: int, victim, now_ns: float):
        """Write one dirty (or alias-pinned) LLC victim back to memory.

        Returns the follow-up :class:`Eviction` produced when a rejected
        (incompressible-alias) writeback re-pins its line — that insertion
        can push *another* line out, which the caller must handle in turn.
        """
        result = self.memory.write(victim.addr, victim.data)
        if self.obs.enabled:
            self.obs.profile.count("writebacks")
            self.obs.trace.emit(
                "writeback",
                t_ns=round(now_ns, 3),
                core=core_index,
                addr=victim.addr,
                accepted=result.accepted,
                compressed=result.compressed,
                ecc_blocks=len(result.ecc_writes),
            )
        if not result.accepted:
            # Incompressible alias: it must stay cached, pinned.  The
            # re-pin may displace another line — hand its eviction back
            # instead of silently dropping a dirty writeback.
            return self.llc.insert(
                victim.addr, victim.data, dirty=True, alias=True
            )
        if self.tracker is not None:
            self.tracker.on_write(victim.addr, now_ns, self._protected(result))
        self.dram.access(victim.addr, True, now_ns)
        for ecc_addr in result.ecc_writes:
            line = self.llc.peek(ecc_addr)
            if line is not None:
                line.dirty = True
            else:
                self.dram.access(ecc_addr, True, now_ns)
        return None

    def _handle_eviction(self, core_index: int, eviction, now_ns: float) -> None:
        # Alias re-pins can chain: each rejected writeback re-pins into a
        # set that may evict another dirty line.  Every link pins one more
        # way (pinned lines are never victims; a fully pinned set spills
        # to overflow instead), so the chain is bounded by associativity —
        # the guard turns any violation of that invariant into a loud
        # failure rather than unbounded recursion.
        steps = 0
        while eviction is not None:
            steps += 1
            if steps > self.llc.ways + 1:
                raise RuntimeError(
                    "eviction chain exceeded LLC associativity "
                    f"({self.llc.ways} ways)"
                )
            victim = eviction.line
            eviction = None
            if self.memory.is_metadata_addr(victim.addr):
                # Dirty ECC metadata block: plain DRAM write, no re-encode.
                if victim.dirty:
                    self.dram.access(victim.addr, True, now_ns)
            elif victim.dirty or victim.alias:
                eviction = self._writeback(core_index, victim, now_ns)

    # -- miss path ---------------------------------------------------------------

    def _miss(
        self, core_index: int, addr: int, is_store: bool, now_ns: float
    ) -> float:
        """Service one LLC miss; returns the time its data is usable."""
        if addr not in self.memory.contents:
            self._populate(core_index, addr, now_ns)
        read = self.memory.read(addr)
        if self.tracker is not None:
            self.tracker.on_read(addr, now_ns)

        data_timing = self.dram.access(addr, False, now_ns)
        usable_ns = data_timing.complete_ns

        for ecc_addr in read.ecc_reads:
            if self.llc.lookup(ecc_addr) is None:
                ecc_timing = self.dram.access(ecc_addr, False, now_ns)
                usable_ns = max(usable_ns, ecc_timing.complete_ns)
                eviction = self.llc.insert(ecc_addr, bytes(64))
                self._handle_eviction(core_index, eviction, now_ns)

        usable_ns += read.decompress_cycles * self.config.cycle_ns

        if self.obs.enabled:
            latency_ns = usable_ns - now_ns
            self.obs.profile.count("misses")
            self.obs.metrics.observe("system.miss_latency_ns", latency_ns)
            self.obs.trace.emit(
                "access",
                t_ns=round(now_ns, 3),
                core=core_index,
                addr=addr,
                store=is_store,
                mode=self.memory.mode.value,
                compressed=read.compressed,
                uncompressed=read.was_uncompressed,
                corrected=read.corrected,
                ecc_blocks=len(read.ecc_reads),
                row_hit=data_timing.row_hit,
                latency_ns=round(latency_ns, 3),
            )

        data = read.data
        if is_store:
            # The store rewrites the line: advance the content version.
            self._versions[addr] = self._versions.get(addr, 0) + 1
            data = self._content(core_index, addr)
        eviction = self.llc.insert(
            addr,
            data,
            dirty=is_store,
            was_uncompressed=read.was_uncompressed,
        )
        self._handle_eviction(core_index, eviction, now_ns)
        return usable_ns

    # -- main loop -----------------------------------------------------------------

    def _run_epoch(self, core_index: int, epoch: Epoch) -> None:
        core = self._cores[core_index]
        compute_ns = (
            epoch.instructions / core.perfect_ipc
        ) * self.config.cycle_ns
        now_ns = core.time_ns + compute_ns

        stall_until = now_ns
        issue_at = now_ns
        outstanding = 0
        for access in epoch.accesses:
            line = self.llc.lookup(access.addr)
            if line is not None:
                if access.is_store:
                    self._versions[access.addr] = (
                        self._versions.get(access.addr, 0) + 1
                    )
                    line.data = self._content(core_index, access.addr)
                    line.dirty = True
                continue
            # MSHR limit: once a full wave of misses is outstanding, the
            # next wave issues when the current one has drained.
            if self.config.mshrs and outstanding >= self.config.mshrs:
                issue_at = stall_until
                outstanding = 0
            usable = self._miss(
                core_index, access.addr, access.is_store, issue_at
            )
            outstanding += 1
            stall_until = max(stall_until, usable)

        core.time_ns = stall_until
        core.result.instructions += epoch.instructions
        core.result.compute_ns += compute_ns
        core.result.stall_ns += stall_until - now_ns
        core.result.epochs += 1

    def run(self) -> PerfResult:
        """Replay all traces to completion; cores interleave by time.

        With ``config.use_batch`` the replay goes through the batched
        struct-of-arrays engine (:mod:`repro.simulation.batch`), which is
        bit-exact with this scalar loop — same stats, timings, and trace
        events — just faster.
        """
        import heapq

        if self.config.use_batch:
            from repro.simulation.batch import BatchReplay

            BatchReplay(self).replay()
            self.publish_metrics()
            return self._perf_result()

        with self.obs.profile.phase("system.run"), self.obs.trace.span(
            "system.run", cores=len(self._cores)
        ):
            heap = [(0.0, i) for i in range(len(self._cores))]
            heapq.heapify(heap)
            while heap:
                _, index = heapq.heappop(heap)
                core = self._cores[index]
                epoch = next(core.epochs, None)
                if epoch is None:
                    core.done = True
                    continue
                self._run_epoch(index, epoch)
                heapq.heappush(heap, (core.time_ns, index))

        self.publish_metrics()
        return self._perf_result()

    def _perf_result(self) -> PerfResult:
        return PerfResult(
            cores=tuple(core.result for core in self._cores),
            cpu_ghz=self.config.cpu_ghz,
            llc_hits=self.llc.stats.hits,
            llc_misses=self.llc.stats.misses,
            dram_reads=self.dram.stats.reads,
            dram_writes=self.dram.stats.writes,
            row_hit_rate=self.dram.stats.row_hit_rate,
        )

    def publish_metrics(self) -> None:
        """Mirror every layer's stats into the shared metrics registry.

        Idempotent — counters are written as absolute values — and a no-op
        when observability is off.  Produces the unified tree::

            controller.*   functional protection-mode counters
            ecc_region.*   COP-ER entry allocation (live via ECCRegion)
            llc.*          shared-LLC hits/misses/pins/overflow
            dram.*         traffic, row hits, per-bank detail
            system.*       instructions, per-core stall/compute time
            profile.*      host wall-clock phases and hot-path counts
        """
        registry = self.obs.metrics
        if not registry.enabled:
            return
        self.memory.publish_metrics(registry)
        self.llc.publish_metrics(registry, prefix="llc")
        self.dram.publish_metrics(registry, prefix="dram")
        instructions = 0
        epochs = 0
        makespan_ns = 0.0
        for index, core in enumerate(self._cores):
            result = core.result
            instructions += result.instructions
            epochs += result.epochs
            makespan_ns = max(makespan_ns, result.total_ns)
            registry.set_gauge(f"system.core{index}.stall_ns", result.stall_ns)
            registry.set_gauge(f"system.core{index}.compute_ns", result.compute_ns)
        registry.update_counters(
            "system", {"instructions": instructions, "epochs": epochs}
        )
        registry.set_gauge("system.makespan_ns", makespan_ns)
        self.obs.profile.publish(registry)
