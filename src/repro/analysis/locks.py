"""Lock-scope inference shared by the concurrency rules (REP007–REP010).

This module answers three lexical questions about a parsed file:

* *Is this expression constructing a lock / queue / thread?*  The
  constructors the repo actually uses — ``threading.Lock()``,
  ``threading.RLock()``, the sanitizer's ``new_lock(...)`` factory,
  ``queue.Queue(...)`` and ``threading.Thread(...)`` — are recognised by
  dotted name, so the class model in :mod:`repro.analysis.dataflow` can
  classify ``self._lock = threading.Lock()`` attributes without type
  inference.

* *Which locks are held at this node?*  :func:`held_locks` walks the
  ancestor chain looking for ``with self._lock:`` items (the only lock
  acquisition idiom in the codebase — ``acquire``/``release`` pairs are
  deliberately not modelled, and the runtime sanitizer covers them
  instead).

* *Is this call blocking?*  :func:`blocking_reason` recognises the
  operations that must never run under a lock: sleeps, subprocesses,
  socket/file I/O, untimed ``queue.get``/``put``, thread joins and
  untimed ``Future.result()`` — plus calls *through a function
  parameter*, which are unbounded work the caller cannot see
  (the ``MemoizedCodec`` compute-inside-lock pattern; REP009 lets a
  ``sanctioned[blocking-under-lock]`` directive bless it).
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Optional, Set

from repro.analysis.base import LintContext, dotted_name

__all__ = [
    "LOCK_CONSTRUCTORS",
    "QUEUE_CONSTRUCTORS",
    "THREAD_CONSTRUCTORS",
    "blocking_reason",
    "held_locks",
    "lock_ctor_kind",
    "self_attr_name",
    "with_lock_names",
]

#: Dotted call names that construct a mutual-exclusion lock.
LOCK_CONSTRUCTORS = {
    "threading.Lock",
    "threading.RLock",
    "Lock",
    "RLock",
    "new_lock",
    "sanitizer.new_lock",
}

#: Dotted call names that construct a thread-safe queue (auto-shared
#: state for REP008: touching a queue from any thread is the API).
QUEUE_CONSTRUCTORS = {
    "queue.Queue",
    "queue.LifoQueue",
    "queue.PriorityQueue",
    "queue.SimpleQueue",
    "Queue",
    "SimpleQueue",
}

#: Dotted call names that construct a thread (REP010's subject).
THREAD_CONSTRUCTORS = {"threading.Thread", "Thread"}

#: Module-level callables that block (matched on the full dotted name).
_BLOCKING_DOTTED = {
    "time.sleep": "time.sleep()",
    "subprocess.run": "subprocess.run()",
    "subprocess.call": "subprocess.call()",
    "subprocess.check_call": "subprocess.check_call()",
    "subprocess.check_output": "subprocess.check_output()",
    "subprocess.Popen": "subprocess.Popen()",
    "socket.create_connection": "socket.create_connection()",
    "open": "open() file I/O",
}

#: Method names that block regardless of receiver type (socket/stream
#: verbs specific enough not to collide with dict/list methods).
_BLOCKING_METHODS = {
    "sendall": "socket send",
    "recv": "socket receive",
    "accept": "socket accept",
    "connect": "socket connect",
    "readline": "stream read",
    "makefile": "socket makefile",
}


def self_attr_name(node: ast.AST) -> Optional[str]:
    """``self.<attr>`` -> ``attr``; ``None`` for anything else."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def lock_ctor_kind(node: ast.expr) -> Optional[str]:
    """Classify a constructor call: ``"lock"``/``"queue"``/``"thread"``."""
    if not isinstance(node, ast.Call):
        return None
    name = dotted_name(node.func)
    if name is None:
        return None
    if name in LOCK_CONSTRUCTORS:
        return "lock"
    if name in QUEUE_CONSTRUCTORS:
        return "queue"
    if name in THREAD_CONSTRUCTORS:
        return "thread"
    return None


def with_lock_names(stmt: ast.With) -> Set[str]:
    """Lock attribute names acquired by ``with self._lock[, self._other]:``."""
    names: Set[str] = set()
    for item in stmt.items:
        attr = self_attr_name(item.context_expr)
        if attr is not None:
            names.add(attr)
    return names


def held_locks(ctx: LintContext, node: ast.AST) -> FrozenSet[str]:
    """Names of ``self.<lock>`` attributes held at ``node``.

    Lexical: every enclosing ``with`` whose context expression is a
    plain ``self.<attr>`` contributes that attribute name.  Callers
    intersect with the class model's known lock attributes, so a
    ``with self.file:`` block never counts as holding a lock.
    """
    held: Set[str] = set()
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.With):
            held |= with_lock_names(ancestor)
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Lock scopes do not cross function boundaries: a nested
            # closure runs whenever it is *called*, not where it is
            # defined, so locks held at the definition site prove
            # nothing about the call site.
            break
    return frozenset(held)


def _has_timeout(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg in ("timeout", "block"):
            return True
    # queue.get(True, 5.0) positional form.
    return len(call.args) >= 2


def blocking_reason(
    call: ast.Call,
    queue_attrs: FrozenSet[str],
    thread_attrs: FrozenSet[str],
    param_names: FrozenSet[str],
) -> Optional[str]:
    """Why this call blocks, or ``None`` if it is not known to.

    ``queue_attrs``/``thread_attrs`` are the enclosing class's inferred
    queue/thread attribute names (so ``self._queue.get()`` is flagged
    but ``cache.get(key)`` on a dict is not); ``param_names`` are the
    enclosing function's parameters (calls through them are unbounded
    work the caller cannot bound).
    """
    func = call.func
    name = dotted_name(func)
    if name is not None and name in _BLOCKING_DOTTED:
        return _BLOCKING_DOTTED[name]
    if isinstance(func, ast.Name) and func.id in param_names:
        return f"call through parameter {func.id!r} (unbounded work)"
    if isinstance(func, ast.Attribute):
        method = func.attr
        if method in _BLOCKING_METHODS:
            return _BLOCKING_METHODS[method]
        base = self_attr_name(func.value)
        if base is not None and base in queue_attrs:
            if method in ("get", "put") and not _has_timeout(call):
                return f"untimed queue {method}() on self.{base}"
        if base is not None and base in thread_attrs and method == "join":
            if not call.args and not call.keywords:
                return f"untimed thread join on self.{base}"
        if method == "result" and not call.args and not call.keywords:
            return "untimed Future.result()"
    return None
