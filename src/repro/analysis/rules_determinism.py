"""REP001 — no ambient entropy in the simulation-determining packages.

The result cache keys a simulation by its *spec* (benchmark, mode, seed,
configs) plus a source-code salt; the parallel runner's bit-equality
contract assumes a job's outcome is a pure function of that spec.  A
single ``random.random()`` (global RNG), ``time.time()`` or
``os.urandom()`` inside ``simulation/``, ``reliability/``,
``workloads/``, ``compression/`` or ``ecc/`` silently breaks both: the
cache would serve stale results for runs that are not actually
reproducible, and parallel runs would diverge from serial ones.

Allowed: explicitly seeded generators — ``random.Random(seed)``,
``numpy.random.default_rng(seed)``, ``numpy.random.RandomState(seed)``.
Constructing any of those *without* a seed argument is flagged too.

The observability/benchmark packages (``obs/``, ``bench/``) are guarded
too, with one escape hatch: host-side *measurement* code (span timers,
the benchmark protocol, artifact timestamps) legitimately reads the
wall clock.  A file whose first ten lines carry the directive ::

    # repro: sanctioned[wall-clock]

has its wall-clock/datetime findings suppressed — and only those; a
global-RNG or ``os.urandom`` call in a sanctioned file is still flagged,
so the directive cannot hide genuine determinism bugs.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.analysis.base import Finding, LintContext, Rule, dotted_name, register

_GUARDED_PACKAGES = (
    "simulation",
    "reliability",
    "workloads",
    "compression",
    "ecc",
    "obs",
    "bench",
)

#: File-level sanction for wall-clock reads in measurement code; must
#: appear in the first ten lines (next to the module docstring, where a
#: reviewer sees it).
_SANCTION_RE = re.compile(r"#\s*repro:\s*sanctioned\[wall-clock\]")
_SANCTION_SCAN_LINES = 10

_WALL_CLOCK = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
}
_DATETIME_FACTORIES = {"now", "utcnow", "today"}
#: Seeded-generator constructors: fine with a seed, flagged bare.
_SEEDED_CTORS = {"Random", "default_rng", "RandomState"}
#: numpy.random names that are types/seeding machinery, not the global RNG.
_NUMPY_OK = {"Generator", "SeedSequence", "PCG64", "Philox", "MT19937", "BitGenerator"}

_MODULES_OF_INTEREST = {
    "random",
    "numpy",
    "np",
    "time",
    "datetime",
    "os",
    "uuid",
    "secrets",
}


def _import_aliases(tree: ast.Module) -> tuple[dict[str, str], dict[str, str]]:
    """(module alias -> canonical module, bare name -> "module.attr")."""
    modules: dict[str, str] = {}
    names: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _MODULES_OF_INTEREST or root == "numpy":
                    modules[alias.asname or root] = (
                        "numpy" if root == "numpy" else root
                    )
        elif isinstance(node, ast.ImportFrom) and node.module:
            root = node.module.split(".")[0]
            if root not in _MODULES_OF_INTEREST:
                continue
            canonical_root = "numpy" if root == "numpy" else root
            suffix = node.module.split(".", 1)[1] if "." in node.module else ""
            for alias in node.names:
                target = f"{suffix}.{alias.name}" if suffix else alias.name
                names[alias.asname or alias.name] = f"{canonical_root}.{target}"
    return modules, names


def _has_seed(call: ast.Call) -> bool:
    return bool(call.args or call.keywords)


@register
class DeterminismRule(Rule):
    id = "REP001"
    name = "determinism"
    description = (
        "no global-RNG, wall-clock or os-entropy calls inside the "
        "packages that determine cached simulation outcomes"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not ctx.in_packages(*_GUARDED_PACKAGES):
            return
        sanctioned = self._wall_clock_sanctioned(ctx.source)
        modules, names = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = self._canonical(node.func, modules, names)
            if canonical is None:
                continue
            if sanctioned and canonical.partition(".")[0] in ("time", "datetime"):
                continue
            message = self._verdict(canonical, node)
            if message is not None:
                yield self.finding(ctx, node, message)

    @staticmethod
    def _wall_clock_sanctioned(source: str) -> bool:
        head = source.splitlines()[:_SANCTION_SCAN_LINES]
        return any(_SANCTION_RE.search(line) for line in head)

    @staticmethod
    def _canonical(
        func: ast.expr, modules: dict[str, str], names: dict[str, str]
    ) -> Optional[str]:
        """Resolve a call target to ``module.attr...`` through the imports."""
        dotted = dotted_name(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in modules:
            return f"{modules[head]}.{rest}" if rest else modules[head]
        if head in names:
            resolved = names[head]
            return f"{resolved}.{rest}" if rest else resolved
        return None

    @staticmethod
    def _verdict(canonical: str, call: ast.Call) -> Optional[str]:
        module, _, attr_path = canonical.partition(".")
        if not attr_path:
            return None
        leaf = attr_path.rsplit(".", 1)[-1]
        if module == "random":
            if leaf == "SystemRandom":
                return "random.SystemRandom is OS-entropy backed; use a seeded random.Random"
            if leaf in _SEEDED_CTORS:
                if not _has_seed(call):
                    return (
                        f"unseeded random.{leaf}() — pass an explicit seed so "
                        "runs are reproducible"
                    )
                return None
            return (
                f"call to the global RNG (random.{attr_path}) poisons the "
                "result cache; use a seeded random.Random instance"
            )
        if module == "numpy":
            if not attr_path.startswith("random."):
                return None
            if leaf in _NUMPY_OK:
                return None
            if leaf in _SEEDED_CTORS:
                if not _has_seed(call):
                    return (
                        f"unseeded numpy.random.{leaf}() — pass an explicit "
                        "seed so runs are reproducible"
                    )
                return None
            return (
                f"call to numpy's global RNG (numpy.{attr_path}); use "
                "numpy.random.default_rng(seed)"
            )
        if module == "time" and leaf in _WALL_CLOCK:
            return (
                f"wall-clock call time.{leaf}() makes the simulation "
                "outcome depend on the host; derive times from simulated state"
            )
        if module == "datetime" and leaf in _DATETIME_FACTORIES:
            return (
                f"datetime.{attr_path}() reads the host clock; pass "
                "timestamps in explicitly"
            )
        if module == "os" and leaf == "urandom":
            return "os.urandom() is irreproducible; use a seeded random.Random"
        if module == "uuid" and leaf in ("uuid1", "uuid4"):
            return f"uuid.{leaf}() is irreproducible; derive ids from the job spec"
        if module == "secrets":
            return f"secrets.{leaf}() is irreproducible by design; use a seeded RNG"
        return None
