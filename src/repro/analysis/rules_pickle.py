"""REP005 — job/result types must survive the fork-pool boundary.

The parallel runner ships :class:`~repro.experiments.runner.SimJob` into
worker processes and :class:`~repro.experiments.runner.SimResult` back
out (and through the on-disk result cache) via ``pickle``.  Three things
break that silently-until-runtime:

* **lambdas** (including ``field(default_factory=lambda: ...)``) — not
  picklable;
* **file handles** — fields annotated ``IO``/``TextIO``/``BinaryIO``,
  or ``open(...)`` captured in the class body;
* **locals-defined classes** — a class created inside a function pickles
  by qualified name lookup, which fails in the worker.

The checked set is the pickled closure: ``SimJob``/``SimResult`` and
the types their fields reach (maintained in ``_ROOT_CLASSES``; within a
file the rule also closes over field annotations automatically, so a
new dataclass referenced by a checked one is checked too).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Finding, LintContext, Rule, register

#: The hand-maintained cross-file closure of pickled types.  ``SimJob``
#: and ``SimResult`` are the roots; the rest are the types their fields
#: carry across the process boundary today.
_ROOT_CLASSES = {
    "SimJob",
    "SimResult",
    "MemorySummary",
    "PerfResult",
    "CoreResult",
    "VulnerabilityReport",
    "SimOutcome",
    # The resilience policy rides along with every _worker_entry submit.
    "ResilienceConfig",
    "ChaosConfig",
}

_HANDLE_TYPES = {"IO", "TextIO", "BinaryIO", "IOBase", "TextIOWrapper", "FileIO"}


def _annotation_idents(annotation: ast.expr) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            names.update(
                part
                for part in node.value.replace("[", " ")
                .replace("]", " ")
                .replace(",", " ")
                .replace(".", " ")
                .split()
            )
    return names


@register
class PicklabilityRule(Rule):
    id = "REP005"
    name = "picklability"
    description = (
        "types crossing the fork-pool boundary (SimJob/SimResult closure) "
        "must avoid lambdas, open handles and locals-defined classes"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        classes: dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef)
        }
        checked = {name for name in classes if name in _ROOT_CLASSES}
        if not checked:
            return
        # Close over field annotations within this file.
        frontier = list(checked)
        while frontier:
            current = classes[frontier.pop()]
            for stmt in current.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                for ident in _annotation_idents(stmt.annotation):
                    if ident in classes and ident not in checked:
                        checked.add(ident)
                        frontier.append(ident)

        for name in sorted(checked):
            node = classes[name]
            yield from self._check_class(ctx, node)

    def _check_class(self, ctx: LintContext, node: ast.ClassDef) -> Iterator[Finding]:
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield self.finding(
                    ctx,
                    node,
                    f"{node.name} is defined inside {ancestor.name}(); "
                    "locals-defined classes cannot be pickled into workers",
                )
                break
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Lambda):
                    yield self.finding(
                        ctx,
                        sub,
                        f"lambda inside picklable type {node.name} "
                        "(lambdas cannot cross the fork-pool boundary); "
                        "use a module-level function or e.g. "
                        "field(default_factory=dict)",
                    )
                elif (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "open"
                ):
                    yield self.finding(
                        ctx,
                        sub,
                        f"open() inside picklable type {node.name}; file "
                        "handles cannot be pickled — store the path instead",
                    )
            if isinstance(stmt, ast.AnnAssign):
                handles = _annotation_idents(stmt.annotation) & _HANDLE_TYPES
                if handles:
                    yield self.finding(
                        ctx,
                        stmt,
                        f"field of picklable type {node.name} is annotated "
                        f"{', '.join(sorted(handles))}; file handles cannot "
                        "be pickled — store the path instead",
                    )
