"""REP007 — lock-protected attributes must be accessed under their lock.

Two ways an attribute becomes lock-protected:

* **Annotated:** its initialisation line carries ``# guarded-by:
  <lock-attr>`` — every tracked use outside ``__init__``-like methods
  must then lexically hold ``with self.<lock-attr>:``.
* **Inferred:** some tracked uses hold a lock and others hold none
  (outside ``__init__``-like methods).  Mixed guarding is exactly how
  the PR 5–7 memo races looked before they were fixed: the author
  believed the attribute was protected, and one access path disagreed.
  The inferred lock is the intersection of the locks held at the
  guarded sites; if the guarded sites don't even agree on a lock the
  class is flagged anyway (conflicting guards are worse than none).

Findings name the conflicting sites so the fix is mechanical: either
take the lock at the flagged site, or annotate/`# shared` the attribute
if it is genuinely immutable-after-init or externally synchronised.

Tracked uses are stores, deletes, subscripts and method calls on the
attribute — bare loads that only pass the reference along are not
races by themselves (see :mod:`repro.analysis.dataflow`).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.analysis.base import Finding, LintContext, Rule, register
from repro.analysis.dataflow import INIT_METHODS, AttrUse, ClassModel, class_models


def _sites(uses: List[AttrUse]) -> str:
    return ", ".join(
        f"{use.method}():{use.line}" for use in sorted(uses, key=lambda u: u.line)[:4]
    )


@register
class GuardedByRule(Rule):
    id = "REP007"
    name = "guarded-by"
    description = (
        "attributes annotated (or inferred) as lock-protected must only "
        "be accessed while that lock is held"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for model in class_models(ctx):
            yield from self._check_annotated(ctx, model)
            yield from self._check_inferred(ctx, model)

    def _check_annotated(
        self, ctx: LintContext, model: ClassModel
    ) -> Iterator[Finding]:
        for attr, lock in model.guarded_by.items():
            if lock not in model.lock_attrs:
                yield self.finding(
                    ctx,
                    model.node,
                    f"{model.name}.{attr} is annotated guarded-by: {lock}, "
                    f"but self.{lock} is not a recognised lock attribute "
                    "(threading.Lock/RLock or sanitizer.new_lock)",
                )
                continue
            uses = [
                u for u in model.uses_of(attr) if u.method not in INIT_METHODS
            ]
            guarded = [u for u in uses if lock in u.locks_held]
            for use in uses:
                if lock in use.locks_held:
                    continue
                where = (
                    f"held at {_sites(guarded)}" if guarded else "held nowhere else"
                )
                yield self.finding(
                    ctx,
                    use.node,
                    f"{model.name}.{attr} is guarded by self.{lock} "
                    f"(declared via # guarded-by), but this {use.kind} in "
                    f"{use.method}() does not hold it ({where}); wrap the "
                    f"access in `with self.{lock}:`",
                )

    def _check_inferred(
        self, ctx: LintContext, model: ClassModel
    ) -> Iterator[Finding]:
        if not model.lock_attrs:
            return
        exempt = (
            set(model.guarded_by)
            | model.shared_attrs
            | model.queue_attrs
            | model.thread_attrs
        )
        by_attr: dict[str, List[AttrUse]] = {}
        for use in model.uses:
            if use.attr in exempt or use.method in INIT_METHODS:
                continue
            by_attr.setdefault(use.attr, []).append(use)
        for attr, uses in sorted(by_attr.items()):
            guarded = [u for u in uses if u.locks_held]
            unguarded = [u for u in uses if not u.locks_held]
            if not guarded or not unguarded:
                continue
            common = frozenset.intersection(*(u.locks_held for u in guarded))
            lock_text = (
                f"self.{sorted(common)[0]}"
                if common
                else "no single lock (the guarded sites disagree)"
            )
            for use in unguarded:
                yield self.finding(
                    ctx,
                    use.node,
                    f"{model.name}.{attr} is accessed under a lock at "
                    f"{_sites(guarded)} ({lock_text}) but this {use.kind} in "
                    f"{use.method}() holds none — either take the lock here "
                    f"or annotate the attribute (# guarded-by: <lock> / "
                    f"# shared) to record the intended discipline",
                )
