"""REP002 — stats dataclasses must merge/serialise every field.

PR 1 and PR 2 each shipped (and then hand-fixed) a bug of the same
shape: a counter added to a stats dataclass that one of ``merge()`` /
``as_dict()`` silently dropped, so per-core totals or published metrics
under-reported.  This rule makes the field list and the fold logic
impossible to desynchronise:

* ``merge()`` must reference **every** field (or iterate
  ``dataclasses.fields``/``asdict``/``vars``, which is exhaustive by
  construction);
* ``as_dict()`` must reference every *scalar* field — container-typed
  fields (``dict``/``list``/``set``/``tuple`` annotations, e.g.
  per-bank breakdowns) may legitimately be excluded from the flat
  counter view, but scalars may not.

A field counts as referenced when the method mentions it as an
attribute (``self.reads``/``other.reads``) or as a string key.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.base import Finding, LintContext, Rule, dotted_name, register

#: Calls that cover every field by construction.  ``as_dict`` qualifies
#: because this rule checks it for completeness too, so a ``merge()``
#: that folds ``other.as_dict()`` inherits a verified field list.
_EXHAUSTIVE_CALLS = {"fields", "asdict", "astuple", "vars", "as_dict"}
_CONTAINER_NAMES = {
    "dict",
    "Dict",
    "defaultdict",
    "list",
    "List",
    "set",
    "Set",
    "frozenset",
    "tuple",
    "Tuple",
    "Mapping",
    "MutableMapping",
    "Sequence",
}
_CHECKED_METHODS = ("merge", "as_dict")


def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = dotted_name(target)
        if name is not None and name.rsplit(".", 1)[-1] == "dataclass":
            return True
    return False


def _annotation_head(annotation: ast.expr) -> Optional[str]:
    """Outermost type name of an annotation (``dict[str, int]`` -> dict)."""
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # String annotation: best-effort parse of its head.
        head = annotation.value.split("[", 1)[0].strip()
        return head.rsplit(".", 1)[-1] or None
    name = dotted_name(annotation)
    if name is not None:
        return name.rsplit(".", 1)[-1]
    return None


def _dataclass_fields(node: ast.ClassDef) -> dict[str, bool]:
    """Field name -> is-container, for the class's own annotated fields."""
    out: dict[str, bool] = {}
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(
            stmt.target, ast.Name
        ):
            continue
        name = stmt.target.id
        if name.startswith("_"):
            continue
        head = _annotation_head(stmt.annotation)
        if head == "ClassVar":
            continue
        out[name] = head in _CONTAINER_NAMES
    return out


def _is_exhaustive(method: ast.FunctionDef) -> bool:
    """Does the method iterate the dataclass machinery (covers all fields)?"""
    for node in ast.walk(method):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and name.rsplit(".", 1)[-1] in _EXHAUSTIVE_CALLS:
                return True
        if isinstance(node, ast.Attribute) and node.attr == "__dict__":
            return True
    return False


def _referenced_names(method: ast.FunctionDef) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            names.add(node.value)
    return names


@register
class MergeCompletenessRule(Rule):
    id = "REP002"
    name = "merge-completeness"
    description = (
        "merge()/as_dict() on stats dataclasses must account for every "
        "(scalar) field"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or not _is_dataclass(node):
                continue
            fields = _dataclass_fields(node)
            if not fields:
                continue
            for stmt in node.body:
                if (
                    not isinstance(stmt, ast.FunctionDef)
                    or stmt.name not in _CHECKED_METHODS
                ):
                    continue
                if _is_exhaustive(stmt):
                    continue
                referenced = _referenced_names(stmt)
                required = (
                    fields
                    if stmt.name == "merge"
                    else {f: c for f, c in fields.items() if not c}
                )
                missing = sorted(f for f in required if f not in referenced)
                if missing:
                    yield self.finding(
                        ctx,
                        stmt,
                        f"{node.name}.{stmt.name}() drops field(s) "
                        f"{', '.join(missing)}; reference them or iterate "
                        "dataclasses.fields(self)",
                    )
