"""Repo-specific static analysis for the COP reproduction.

``python -m repro.analysis [paths] --check`` runs six AST-based rules
that machine-check the invariants the simulator's correctness rests on:

``REP001 determinism``
    No ambient entropy (global ``random.*``, wall clocks, ``os.urandom``)
    inside the packages whose outputs feed the content-addressed result
    cache and the parallel==serial bit-equality contract.
``REP002 merge-completeness``
    Stats dataclasses that define ``merge()``/``as_dict()`` must account
    for every field — the dropped-counter bug class from PRs 1-2.
``REP003 bit-width``
    Codeword arithmetic in ``ecc/``/``compression/`` must mask left
    shifts to a declared width, and public functions taking 64-byte
    blocks must validate their length.
``REP004 obs-guard``
    ``tracer.emit(...)`` calls must sit behind an ``enabled`` guard so
    disabled observability stays (near) free on hot paths.
``REP005 picklability``
    Types that cross the fork-pool boundary (``SimJob``/``SimResult``
    and their field closure) must avoid lambdas, file handles and
    locals-defined classes.
``REP006 broad-except``
    Bare/catch-all ``except`` handlers must re-raise or record a metric
    — failures are detected and counted, never silently swallowed (the
    corrupt-cache-entry bug class from PR 4).

Per-line suppression: ``# repro: noqa[rule-id]`` (or a bare
``# repro: noqa`` for all rules).  See ``docs/static-analysis.md``.
"""

from __future__ import annotations

from repro.analysis.base import RULES, Finding, Rule, register
from repro.analysis.engine import (
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)

# Importing the rule modules populates the registry.
from repro.analysis import rules_determinism  # noqa: F401  (registration)
from repro.analysis import rules_merge  # noqa: F401
from repro.analysis import rules_bitwidth  # noqa: F401
from repro.analysis import rules_obsguard  # noqa: F401
from repro.analysis import rules_pickle  # noqa: F401
from repro.analysis import rules_except  # noqa: F401

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "register",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
]
