"""Repo-specific static analysis for the COP reproduction.

``python -m repro.analysis [paths] --check`` runs eleven AST-based rules
that machine-check the invariants the simulator's correctness rests on:

``REP001 determinism``
    No ambient entropy (global ``random.*``, wall clocks, ``os.urandom``)
    inside the packages whose outputs feed the content-addressed result
    cache and the parallel==serial bit-equality contract.
``REP002 merge-completeness``
    Stats dataclasses that define ``merge()``/``as_dict()`` must account
    for every field — the dropped-counter bug class from PRs 1-2.
``REP003 bit-width``
    Codeword arithmetic in ``ecc/``/``compression/`` must mask left
    shifts to a declared width, and public functions taking 64-byte
    blocks must validate their length.
``REP004 obs-guard``
    ``tracer.emit(...)`` calls must sit behind an ``enabled`` guard so
    disabled observability stays (near) free on hot paths.
``REP005 picklability``
    Types that cross the fork-pool boundary (``SimJob``/``SimResult``
    and their field closure) must avoid lambdas, file handles and
    locals-defined classes.
``REP006 broad-except``
    Bare/catch-all ``except`` handlers must re-raise or record a metric
    — failures are detected and counted, never silently swallowed (the
    corrupt-cache-entry bug class from PR 4).
``REP007 guarded-by``
    Attributes annotated ``# guarded-by: <lock>`` (or inferred
    lock-protected from mixed guarded/unguarded access) must only be
    touched while that lock is held — the memo-race bug class from
    PRs 5–7, caught before review instead of by stress tests.
``REP008 single-owner``
    Classes declaring ``# owner-thread: <entry>`` (the service shard
    workers) may only touch their owned mutable state from owner-run
    methods; cross-thread access goes through the queue/peek API.
``REP009 blocking-under-lock``
    No sleeps, subprocesses, socket/file I/O or untimed waits while a
    lock is held; deliberate designs carry a
    ``sanctioned[blocking-under-lock]`` directive.
``REP010 thread-discipline``
    Every ``threading.Thread(...)`` in the service layer is daemonized
    or joined on the shutdown path — no fire-and-forget workers.
``REP011 ambiguous-retry``
    ``Status.INTERNAL`` must never share a retry-safe status collection
    with the never-executed statuses (``RETRYABLE``/``BUSY``/
    ``DEADLINE_EXCEEDED``/``OVERLOADED``): INTERNAL makes no
    never-executed promise, so a write retried on it can double-apply.

The four concurrency rules share a class-level dataflow model
(:mod:`repro.analysis.dataflow`, :mod:`repro.analysis.locks`); their
runtime twin is the opt-in lock sanitizer
(:mod:`repro.analysis.sanitizer`, ``REPRO_SANITIZE=locks``).

Per-line suppression: ``# repro: noqa[rule-id]`` (or a bare
``# repro: noqa`` for all rules).  See ``docs/static-analysis.md``.
"""

from __future__ import annotations

from repro.analysis.base import RULES, Finding, Rule, register
from repro.analysis.engine import (
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)

# Importing the rule modules populates the registry.
from repro.analysis import rules_determinism  # noqa: F401  (registration)
from repro.analysis import rules_merge  # noqa: F401
from repro.analysis import rules_bitwidth  # noqa: F401
from repro.analysis import rules_obsguard  # noqa: F401
from repro.analysis import rules_pickle  # noqa: F401
from repro.analysis import rules_except  # noqa: F401
from repro.analysis import rules_guardedby  # noqa: F401
from repro.analysis import rules_owner  # noqa: F401
from repro.analysis import rules_blocking  # noqa: F401
from repro.analysis import rules_threads  # noqa: F401
from repro.analysis import rules_retry  # noqa: F401

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "register",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
]
