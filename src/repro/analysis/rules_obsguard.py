"""REP004 — trace emission must hide behind an ``enabled`` guard.

The observability design keeps disabled instrumentation effectively
free: hot paths pay one attribute load and one branch.  That only holds
if the *payload construction* — the keyword arguments to
``tracer.emit(...)`` — is never evaluated when tracing is off.  An
unguarded ``self.obs.trace.emit("read", addr=addr, ...)`` builds the
whole payload dict on every access even with the ``NullTracer``
installed, which is exactly the regression the <5% no-op overhead bench
(``benchmarks/bench_obs_overhead.py``) exists to catch.

Recognised guards for an ``emit`` call:

* a lexically enclosing ``if``/conditional whose test mentions
  ``enabled`` (``if self.obs.enabled: ... emit(...)``);
* an early-exit guard earlier in the same function — an ``if`` whose
  test mentions ``enabled`` and whose body returns/continues/raises.

The rule skips ``repro/obs`` (the tracer's own implementation) and
``repro/analysis``.  Span calls are exempt: spans bracket coarse phases
and are few by design.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Finding, LintContext, Rule, register

_TRACER_NAMES = {"trace", "tracer", "_tracer"}
_EXEMPT_PACKAGES = ("obs", "analysis")


def _mentions_enabled(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
            return True
        if isinstance(sub, ast.Name) and sub.id == "enabled":
            return True
    return False


def _is_tracer_emit(node: ast.Call) -> bool:
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
        return False
    owner = func.value
    if isinstance(owner, ast.Attribute):
        return owner.attr in _TRACER_NAMES
    if isinstance(owner, ast.Name):
        return owner.id in _TRACER_NAMES
    return False


def _early_exit_guard(
    func: ast.FunctionDef | ast.AsyncFunctionDef, before_line: int
) -> bool:
    """Is there an `if ...enabled...: return/continue/raise` before the call?"""
    for stmt in ast.walk(func):
        if not isinstance(stmt, ast.If) or stmt.lineno >= before_line:
            continue
        if not _mentions_enabled(stmt.test):
            continue
        if any(
            isinstance(s, (ast.Return, ast.Continue, ast.Raise)) for s in stmt.body
        ):
            return True
    return False


@register
class ObsGuardRule(Rule):
    id = "REP004"
    name = "obs-guard"
    description = (
        "tracer.emit(...) must be guarded by an `enabled` check so "
        "disabled tracing never builds event payloads"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.in_packages(*_EXEMPT_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and _is_tracer_emit(node)):
                continue
            if self._guarded(ctx, node):
                continue
            yield self.finding(
                ctx,
                node,
                "tracer.emit() outside an `enabled` guard builds its "
                "payload even when tracing is off; wrap it in "
                "`if obs.enabled:` (see docs/observability.md)",
            )

    @staticmethod
    def _guarded(ctx: LintContext, node: ast.Call) -> bool:
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.If, ast.IfExp, ast.While)):
                if _mentions_enabled(ancestor.test):
                    return True
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return _early_exit_guard(ancestor, node.lineno)
        return False
