"""REP009 — no blocking operations while a lock is held.

A lock-holder that sleeps, does socket/file I/O, spawns a subprocess,
or parks on an untimed ``queue.get``/``put``/``Future.result`` turns
every other thread contending for that lock into a convoy — and, when
the blocked operation itself waits on one of those threads, into a
deadlock.  The service's latency percentiles live and die on critical
sections staying short (docs/service.md).

The rule looks at every ``with self.<lock>:`` block (locks identified
through the class model of :mod:`repro.analysis.dataflow`) and flags:

* known-blocking calls (``time.sleep``, ``subprocess.*``, ``open``,
  socket verbs, untimed queue/thread/future waits — see
  :mod:`repro.analysis.locks`);
* calls *through a function parameter* — unbounded work the caller
  cannot bound (the ``MemoizedCodec`` compute-inside-lock pattern);
* calls to ``self`` methods that transitively perform a blocking call
  (one class deep: the intra-class call graph is closed transitively).

Some of these are deliberate: the memo computes misses inside its lock
so a distinct content is computed exactly once, and the pipelined
service client *exists* to serialise socket I/O under its lock.  Those
sites carry a sanctioning directive naming this rule on the ``with``
line (or the call line)::

    with self._lock:  # sanctioned[blocking-under-lock]: <why>

A sanction is stronger than a ``noqa``: it documents a reviewed design
decision, and the runtime sanitizer still watches the sanctioned block
for lock-order cycles (docs/static-analysis.md).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterator, Optional, Set

from repro.analysis.base import Finding, LintContext, Rule, register
from repro.analysis.dataflow import ClassModel, class_models
from repro.analysis.locks import blocking_reason, self_attr_name, with_lock_names

_SANCTION_RE = re.compile(r"sanctioned\[(?:blocking-under-lock|REP009)\]", re.I)


def _sanctioned(ctx: LintContext, *linenos: int) -> bool:
    for lineno in linenos:
        if 1 <= lineno <= len(ctx.lines) and _SANCTION_RE.search(
            ctx.lines[lineno - 1]
        ):
            return True
    return False


def _blocking_methods(ctx: LintContext, model: ClassModel) -> Dict[str, str]:
    """Map of this class's methods to why they (transitively) block."""
    queue_attrs = frozenset(model.queue_attrs)
    thread_attrs = frozenset(model.thread_attrs)
    direct: Dict[str, str] = {}
    for name, method in model.methods.items():
        params = _param_names(method)
        for node in ast.walk(method):
            if isinstance(node, ast.Call):
                reason = blocking_reason(node, queue_attrs, thread_attrs, params)
                if reason is not None and not _sanctioned(ctx, node.lineno):
                    direct[name] = reason
                    break
    # Transitive closure over the intra-class call graph.
    closed = dict(direct)
    changed = True
    while changed:
        changed = False
        for name, callees in model.calls.items():
            if name in closed:
                continue
            for callee in callees:
                if callee in closed:
                    closed[name] = f"calls self.{callee}() which blocks ({closed[callee]})"
                    changed = True
                    break
    return closed


def _param_names(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> FrozenSet[str]:
    args = func.args
    names = [
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        if a.arg not in ("self", "cls")
    ]
    return frozenset(names)


@register
class BlockingUnderLockRule(Rule):
    id = "REP009"
    name = "blocking-under-lock"
    description = (
        "no sleeps, subprocesses, socket/file I/O or untimed waits while "
        "holding a lock (sanction deliberate cases on the with-line)"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for model in class_models(ctx):
            if not model.lock_attrs:
                continue
            blocking = _blocking_methods(ctx, model)
            for method in model.methods.values():
                yield from self._check_method(ctx, model, method, blocking)

    def _check_method(
        self,
        ctx: LintContext,
        model: ClassModel,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        blocking: Dict[str, str],
    ) -> Iterator[Finding]:
        queue_attrs = frozenset(model.queue_attrs)
        thread_attrs = frozenset(model.thread_attrs)
        params = _param_names(method)
        for stmt in ast.walk(method):
            if not isinstance(stmt, ast.With):
                continue
            locks = with_lock_names(stmt) & model.lock_attrs
            if not locks:
                continue
            lock_text = ", ".join(f"self.{name}" for name in sorted(locks))
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                reason = self._call_reason(
                    node, blocking, queue_attrs, thread_attrs, params
                )
                if reason is None:
                    continue
                if _sanctioned(ctx, node.lineno, stmt.lineno):
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"{reason} while holding {lock_text} in "
                    f"{model.name}.{method.name}() — move it outside the "
                    "critical section, add a timeout, or sanction the "
                    "design with `# sanctioned[blocking-under-lock]: <why>`",
                )

    @staticmethod
    def _call_reason(
        node: ast.Call,
        blocking: Dict[str, str],
        queue_attrs: FrozenSet[str],
        thread_attrs: FrozenSet[str],
        params: FrozenSet[str],
    ) -> Optional[str]:
        reason = blocking_reason(node, queue_attrs, thread_attrs, params)
        if reason is not None:
            return reason
        callee = self_attr_name(node.func)
        if callee is not None and callee in blocking:
            return f"self.{callee}() blocks ({blocking[callee]})"
        return None
