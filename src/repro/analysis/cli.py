"""Command-line front end: ``python -m repro.analysis [paths] [options]``.

Exit codes: 0 clean (or report-only mode), 1 findings under ``--check``,
2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional, Sequence

from repro.analysis.base import RULES, Finding, Rule
from repro.analysis.engine import lint_paths, render_json

__all__ = ["main"]


def _matches(rule: Rule, token: str) -> bool:
    """Exact id/name match, or a prefix of the id (``rep00``, ``REP``)."""
    rule_id = rule.id.lower()
    return token in (rule_id, rule.name.lower()) or rule_id.startswith(token)


def _select_rules(spec: Optional[str]) -> Optional[list[Rule]]:
    if spec is None:
        return None
    wanted = {item.strip().lower() for item in spec.split(",") if item.strip()}
    selected = [
        rule for rule in RULES.values() if any(_matches(rule, t) for t in wanted)
    ]
    unknown = {
        token
        for token in wanted
        if not any(_matches(rule, token) for rule in RULES.values())
    }
    if unknown:
        print(f"unknown rule(s): {', '.join(sorted(unknown))}", file=sys.stderr)
        raise SystemExit(2)
    return selected


def _statistics(findings: Sequence[Finding]) -> Dict[str, object]:
    per_rule: Dict[str, int] = {}
    for finding in findings:
        per_rule[finding.rule_id] = per_rule.get(finding.rule_id, 0) + 1
    return {
        "total": len(findings),
        "files": len({finding.path for finding in findings}),
        "by_rule": dict(sorted(per_rule.items())),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter for the COP reproduction",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when any finding survives suppression",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as a JSON array"
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids/names to run (default: all)",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print a per-rule finding summary after the findings",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES.values(), key=lambda r: r.id):
            print(f"{rule.id}  {rule.name:<20} {rule.description}")
        return 0

    rules = _select_rules(args.select)
    try:
        findings = lint_paths(args.paths, rules=rules)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        if args.statistics:
            print(
                json.dumps(
                    {
                        "findings": [f.as_dict() for f in findings],
                        "statistics": _statistics(findings),
                    },
                    indent=2,
                )
            )
        else:
            print(render_json(findings))
    else:
        for finding in findings:
            print(finding.format())
        if findings:
            print(f"{len(findings)} finding(s)")
        elif not args.check:
            print("clean")
        if args.statistics:
            stats = _statistics(findings)
            print(f"statistics: {stats['total']} finding(s) in {stats['files']} file(s)")
            for rule_id, count in stats["by_rule"].items():  # type: ignore[union-attr]
                rule = RULES.get(rule_id)
                name = f" [{rule.name}]" if rule is not None else ""
                print(f"  {rule_id}{name}: {count}")

    if args.check and findings:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
