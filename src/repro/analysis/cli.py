"""Command-line front end: ``python -m repro.analysis [paths] [options]``.

Exit codes: 0 clean (or report-only mode), 1 findings under ``--check``,
2 usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.base import RULES, Rule
from repro.analysis.engine import lint_paths, render_json

__all__ = ["main"]


def _select_rules(spec: Optional[str]) -> Optional[list[Rule]]:
    if spec is None:
        return None
    wanted = {item.strip().lower() for item in spec.split(",") if item.strip()}
    selected = [
        rule
        for rule in RULES.values()
        if rule.id.lower() in wanted or rule.name.lower() in wanted
    ]
    matched = {rule.id.lower() for rule in selected} | {
        rule.name.lower() for rule in selected
    }
    unknown = wanted - matched
    if unknown:
        print(f"unknown rule(s): {', '.join(sorted(unknown))}", file=sys.stderr)
        raise SystemExit(2)
    return selected


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter for the COP reproduction",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when any finding survives suppression",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as a JSON array"
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids/names to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES.values(), key=lambda r: r.id):
            print(f"{rule.id}  {rule.name:<20} {rule.description}")
        return 0

    rules = _select_rules(args.select)
    try:
        findings = lint_paths(args.paths, rules=rules)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(render_json(findings))
    else:
        for finding in findings:
            print(finding.format())
        if findings:
            print(f"{len(findings)} finding(s)")
        elif not args.check:
            print("clean")

    if args.check and findings:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
