"""REP008 — single-owner classes: only owner-run methods touch owned state.

The service shards are single-owner by design: one worker thread owns
the controller, the codec memo and the per-shard counters; every other
thread interacts through the bounded queue (docs/service.md).  That
discipline is what lets the shard run without a lock around the
controller — and nothing enforced it until this rule.

A class opts in with a ``# owner-thread: <entry-method>`` directive in
its body.  The *owner set* is the entry method plus every method it
transitively calls through ``self.<m>()``; the *owned attributes* are
the ones those methods store to, subscript, delete or call methods on
(minus locks, queues, threads, ``# shared`` channels and
``# guarded-by`` attributes, which other rules govern).  Any touch of
an owned attribute — or any call to an owner-run method — from a
method outside the owner set is flagged, unless that method carries
``# owner-thread: external`` on its ``def`` line, documenting that it
runs only while the worker is stopped (pre-``start()``/post-``join()``).

``__init__``-like methods are exempt: they run before the object is
published to other threads.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.base import Finding, LintContext, Rule, register
from repro.analysis.dataflow import INIT_METHODS, class_models


@register
class SingleOwnerRule(Rule):
    id = "REP008"
    name = "single-owner"
    description = (
        "classes declaring # owner-thread may only touch their owned "
        "mutable state from owner-run methods"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for model in class_models(ctx):
            if model.owner_entry is None:
                continue
            if model.owner_entry not in model.methods:
                yield self.finding(
                    ctx,
                    model.node,
                    f"{model.name} declares # owner-thread: "
                    f"{model.owner_entry}, but no such method exists",
                )
                continue
            owners = model.owner_methods()
            owned = model.owned_attrs()
            exempt = owners | INIT_METHODS | model.external_methods
            for use in model.uses:
                if use.method in exempt or use.attr not in owned:
                    continue
                yield self.finding(
                    ctx,
                    use.node,
                    f"{model.name}.{use.attr} is owned by the "
                    f"{model.owner_entry}() worker thread, but this "
                    f"{use.kind} runs in {use.method}() on a caller thread "
                    "— go through the queue/peek API, or mark the method "
                    "`# owner-thread: external` if it provably runs only "
                    "while the worker is stopped",
                )
            for method_name, callees in sorted(model.calls.items()):
                if method_name in exempt:
                    continue
                for callee in sorted(callees & owners):
                    yield self.finding(
                        ctx,
                        model.methods[method_name],
                        f"{model.name}.{method_name}() calls {callee}(), "
                        f"which runs on the {model.owner_entry}() owner "
                        "thread — submitting through the queue keeps the "
                        "single-owner contract; or mark the caller "
                        "`# owner-thread: external`",
                    )
