"""Opt-in runtime lock sanitizer: order-graph + guarded-access checks.

The static rules (REP007–REP010) are lexical; this module is their
runtime twin, enabled by setting ``REPRO_SANITIZE=locks`` in the
environment.  Hot-path classes mint their locks through
:func:`new_lock` — a plain ``threading.Lock``/``RLock`` normally, a
:class:`SanitizedLock` when sanitizing — so production pays nothing and
the sanitized smoke (``make race-smoke``) must stay byte-identical on
every deterministic output.

When sanitizing, each acquisition:

* records an edge ``held -> acquired`` in a process-wide
  lock-acquisition-order graph (nodes are lock instances, labelled
  ``<name>#<seq>``) and raises :class:`LockOrderError` the moment an
  edge closes a cycle — the ABBA deadlock *potential*, caught even when
  the interleaving that would deadlock never happens;
* maintains a per-thread stack of held locks so
  :func:`assert_held` can verify a ``# guarded-by`` attribute is
  actually protected at runtime, raising :class:`GuardedAccessError`
  (and counting ``analysis.sanitizer.guarded_violations``) otherwise.

Counters live in a module-private :class:`MetricsRegistry` under
``analysis.sanitizer.*`` — deliberately *not* the caller's registry, so
enabling the sanitizer never perturbs merged service metrics.  Use
:func:`report` for a snapshot and :func:`reset` between tests.
"""

from __future__ import annotations

import itertools
import os
import threading
from typing import Any, Dict, Iterator, List, Optional, Set

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "GuardedAccessError",
    "LockOrderError",
    "SanitizedLock",
    "assert_held",
    "enabled",
    "new_lock",
    "report",
    "reset",
]


class LockOrderError(RuntimeError):
    """Acquiring this lock closes a cycle in the acquisition-order graph."""


class GuardedAccessError(RuntimeError):
    """A guarded attribute was accessed without its lock held."""


def enabled() -> bool:
    """Is lock sanitizing switched on (``REPRO_SANITIZE=locks``)?"""
    spec = os.environ.get("REPRO_SANITIZE", "")
    return "locks" in {item.strip() for item in spec.split(",")}


#: The sanitizer's own mutable state is guarded by one meta-lock — a
#: plain lock, exempt from sanitizing (it nests inside every sanitized
#: acquisition and would otherwise pollute the order graph).
_meta = threading.Lock()
_registry = MetricsRegistry()
#: Acquisition-order graph: node label -> set of successor labels.
_graph: Dict[str, Set[str]] = {}
_seq = itertools.count()


class _HeldStack(threading.local):
    def __init__(self) -> None:
        self.stack: List["SanitizedLock"] = []


_held = _HeldStack()


def _find_path(source: str, target: str) -> Optional[List[str]]:
    """A path ``source -> ... -> target`` in the order graph, if any."""
    stack = [(source, [source])]
    seen = {source}
    while stack:
        node, path = stack.pop()
        if node == target:
            return path
        for succ in sorted(_graph.get(node, ())):
            if succ not in seen:
                seen.add(succ)
                stack.append((succ, path + [succ]))
    return None


class SanitizedLock:
    """A ``threading.Lock`` that reports to the order graph.

    Context-manager compatible with the lock it replaces; the only
    behavioural difference is bookkeeping (and raising on violations),
    so sanitized runs stay deterministic wherever the plain run was.
    """

    def __init__(self, name: str, reentrant: bool = False) -> None:
        self.name = f"{name}#{next(_seq)}"
        self._reentrant = reentrant
        # threading.Lock/RLock are factory functions, not types, so the
        # attribute stays inferred rather than annotated.
        self._inner = threading.RLock() if reentrant else threading.Lock()

    def held_by_current_thread(self) -> bool:
        return any(lock is self for lock in _held.stack)

    def _note_acquired(self) -> None:
        held = [lock for lock in _held.stack if lock is not self]
        with _meta:
            _registry.counter("analysis.sanitizer.acquires").inc()
            for prior in held:
                succs = _graph.setdefault(prior.name, set())
                if self.name in succs:
                    continue
                # Adding prior -> self closes a cycle iff self already
                # reaches prior.
                path = _find_path(self.name, prior.name)
                if path is not None:
                    _registry.counter("analysis.sanitizer.cycles").inc()
                    cycle = " -> ".join(path + [self.name])
                    raise LockOrderError(
                        f"lock acquisition order cycle (deadlock "
                        f"potential): holding {prior.name}, acquiring "
                        f"{self.name}, but the graph already orders "
                        f"{cycle}"
                    )
                succs.add(self.name)
                _registry.counter("analysis.sanitizer.edges").inc()
        _held.stack.append(self)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            try:
                self._note_acquired()
            except LockOrderError:
                self._inner.release()
                raise
        return got

    def release(self) -> None:
        for index in range(len(_held.stack) - 1, -1, -1):
            if _held.stack[index] is self:
                del _held.stack[index]
                break
        with _meta:
            _registry.counter("analysis.sanitizer.releases").inc()
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()


def new_lock(name: str, reentrant: bool = False) -> Any:
    """A lock for hot-path classes: sanitized only when opted in.

    ``name`` labels the lock in the order graph and in violation
    reports; instances get a ``#<seq>`` suffix so distinct locks with
    the same role stay distinct nodes.
    """
    if enabled():
        return SanitizedLock(name, reentrant=reentrant)
    return threading.RLock() if reentrant else threading.Lock()


def assert_held(lock: object, what: str) -> None:
    """Runtime half of ``# guarded-by``: raise unless ``lock`` is held.

    A no-op for plain locks (ownership is untrackable) and when
    sanitizing is off, so callers may sprinkle this on guarded access
    paths without any production cost beyond an ``isinstance``.
    """
    if isinstance(lock, SanitizedLock) and not lock.held_by_current_thread():
        with _meta:
            _registry.counter("analysis.sanitizer.guarded_violations").inc()
        raise GuardedAccessError(
            f"guarded access to {what} without holding {lock.name}"
        )


def held_locks() -> List[str]:
    """Labels of the sanitized locks the current thread holds (inner first)."""
    return [lock.name for lock in _held.stack]


def report() -> Dict[str, int]:
    """Counter snapshot (``analysis.sanitizer.*`` keys, prefix stripped)."""
    with _meta:
        snapshot = _registry.snapshot().get("counters", {})
        out = {
            key.rsplit(".", 1)[-1]: value
            for key, value in snapshot.items()
            if key.startswith("analysis.sanitizer.")
        }
        for key in ("acquires", "releases", "edges", "cycles", "guarded_violations"):
            out.setdefault(key, 0)
        out["locks_tracked"] = len(_graph)
        return out


def reset() -> None:
    """Forget the order graph and zero the counters (test isolation)."""
    global _registry
    with _meta:
        _graph.clear()
        _registry = MetricsRegistry()


def _iter_edges() -> Iterator[tuple[str, str]]:  # pragma: no cover - debug aid
    with _meta:
        for source, succs in sorted(_graph.items()):
            for succ in sorted(succs):
                yield (source, succ)
