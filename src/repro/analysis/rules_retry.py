"""REP011 — ``Status.INTERNAL`` must never be classed retry-safe for writes.

The service's retry contract (docs/service.md) splits response statuses
into two tiers.  ``RETRYABLE``/``BUSY``/``DEADLINE_EXCEEDED``/
``OVERLOADED`` are *never-executed* guarantees: the daemon promises the
op did not touch state, so any client may re-send anything.
``INTERNAL`` carries no such promise — the op may have half-executed
before raising — so a write retried on ``INTERNAL`` can double-apply.
The server encodes this as two separate constants
(``NEVER_EXECUTED_STATUSES`` vs ``READONLY_RETRY_STATUSES``) combined in
:func:`repro.service.server.retry_safe`, which consults the op kind.

This rule is the tripwire for the tempting refactor that merges them:
any set/list/tuple literal that puts ``Status.INTERNAL`` in the same
retry-flavored collection as a never-executed status.  A collection is
retry-flavored when the name it is bound to (or compared against via
``in``) mentions retry/never-executed/idempotent — naming a collection
that way *is* the claim that membership means "safe to re-send", and
``INTERNAL`` can only belong next to an op-kind check like
``retry_safe``'s.

Scoped to ``repro/service`` — analysis fixtures and client code outside
the service package are free to build whatever status sets they like.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.base import Finding, LintContext, Rule, register
from repro.analysis.base import dotted_name

#: Statuses whose wire contract is "the op never executed".
_NEVER_EXECUTED = {
    "Status.RETRYABLE",
    "Status.BUSY",
    "Status.DEADLINE_EXCEEDED",
    "Status.OVERLOADED",
}
_AMBIGUOUS = "Status.INTERNAL"
#: Name fragments that mark a collection as meaning "safe to re-send".
_RETRY_NAME_HINTS = ("retry", "never_executed", "idempotent", "resend")


def _literal_elements(node: ast.AST) -> Optional[Tuple[ast.expr, ...]]:
    """Elements of a set/list/tuple literal, unwrapping set()/frozenset()."""
    if isinstance(node, (ast.Set, ast.List, ast.Tuple)):
        return tuple(node.elts)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
        and len(node.args) == 1
        and not node.keywords
    ):
        return _literal_elements(node.args[0])
    return None


def _retry_flavored_name(ctx: LintContext, node: ast.AST) -> Optional[str]:
    """The retry-suggesting name this literal is bound to or tested as."""
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                ancestor.targets
                if isinstance(ancestor, ast.Assign)
                else [ancestor.target]
            )
            for target in targets:
                name = dotted_name(target)
                if name is not None and _mentions_retry(name):
                    return name
            return None
        if isinstance(ancestor, ast.Compare) and any(
            isinstance(op, (ast.In, ast.NotIn)) for op in ancestor.ops
        ):
            # `status in {Status.RETRYABLE, Status.INTERNAL}` — the literal
            # acts as an anonymous retry set when it gates a retry branch.
            func = ctx.enclosing_function(ancestor)
            if func is not None and _mentions_retry(func.name):
                return func.name
            return None
        if isinstance(ancestor, ast.stmt):
            return None
    return None


def _mentions_retry(name: str) -> bool:
    lowered = name.lower()
    return any(hint in lowered for hint in _RETRY_NAME_HINTS)


@register
class AmbiguousRetryRule(Rule):
    id = "REP011"
    name = "ambiguous-retry"
    description = (
        "Status.INTERNAL must not share a retry-safe status collection "
        "with the never-executed statuses; writes retried on INTERNAL "
        "can double-apply"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not ctx.in_packages("service"):
            return
        for node in ast.walk(ctx.tree):
            elements = _literal_elements(node)
            if elements is None:
                continue
            parent = ctx.parent(node)
            if (
                isinstance(node, (ast.Set, ast.List, ast.Tuple))
                and isinstance(parent, ast.Call)
                and _literal_elements(parent) is not None
            ):
                continue  # reported via the wrapping set()/frozenset() call
            names = {dotted_name(el) for el in elements}
            if _AMBIGUOUS not in names or not (names & _NEVER_EXECUTED):
                continue
            bound = _retry_flavored_name(ctx, node)
            if bound is None:
                continue
            shared = sorted(
                name.split(".", 1)[1] for name in (names & _NEVER_EXECUTED)
            )
            yield self.finding(
                ctx,
                node,
                f"{bound!r} groups Status.INTERNAL with never-executed "
                f"statuses ({', '.join(shared)}); INTERNAL makes no "
                "never-executed promise, so a write retried on it can "
                "double-apply — keep INTERNAL behind an op-kind check "
                "like retry_safe() (docs/service.md)",
            )
