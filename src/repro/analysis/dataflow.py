"""Per-class dataflow model shared by the concurrency rules.

:func:`class_models` builds (once per file, cached on the
:class:`~repro.analysis.base.LintContext`) a :class:`ClassModel` for
every class: which attributes exist, which methods *use* them and how,
which locks are held at each use, the intra-class call graph, and the
annotation directives the rules key off.

Annotation conventions (see docs/static-analysis.md):

``# guarded-by: <lock-attr>``
    Trailing comment on a ``self.<attr> = ...`` line: every tracked use
    of that attribute outside ``__init__``-like methods must hold
    ``self.<lock-attr>`` (REP007).

``# owner-thread: <entry-method>``
    Comment inside a class body (not on a ``def`` line): declares the
    class single-owner — its mutable state is touched only by
    ``<entry-method>`` and the methods it transitively calls (REP008).

``# owner-thread: external``
    Trailing comment on a ``def`` line of an owner-thread class: this
    method is documented to run only while the worker is *not* running
    (pre-start/post-join), so owner-state access from it is sanctioned.

``# shared``
    Trailing comment on a ``self.<attr> = ...`` line: the attribute is
    a thread-safe channel (its own locking or lock-free by design) and
    exempt from REP008 ownership.  Lock/queue attributes are auto-shared.

Tracked uses are the accesses that can actually race: attribute stores,
deletes, subscripting (``self.x[k]``, read or write) and method calls on
the attribute (``self.x.append(...)``).  Bare loads that merely pass the
reference along (``helper(self.x)``) are not tracked — chasing them
interprocedurally is out of scope for a lexical pass, and flagging them
would bury the real findings in noise.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.base import LintContext
from repro.analysis.locks import (
    held_locks,
    lock_ctor_kind,
    self_attr_name,
)

__all__ = ["AttrUse", "ClassModel", "class_models"]

_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_]\w*)")
_OWNER_RE = re.compile(r"#\s*owner-thread:\s*([A-Za-z_]\w*)")
_SHARED_RE = re.compile(r"#\s*shared\b")

#: Methods that run before the object is published to other threads (or
#: during pickling, which is single-threaded by construction).
INIT_METHODS = frozenset(
    {
        "__init__",
        "__post_init__",
        "__getstate__",
        "__setstate__",
        "__reduce__",
        "__copy__",
        "__deepcopy__",
    }
)


@dataclass(frozen=True)
class AttrUse:
    """One tracked use of ``self.<attr>`` inside a method."""

    attr: str
    method: str
    node: ast.AST
    #: ``store`` / ``del`` / ``subscript`` / ``call``.
    kind: str
    #: For ``call`` uses, the method invoked on the attribute.
    callee: Optional[str]
    #: Lock attribute names (of this class) held at the use site.
    locks_held: FrozenSet[str]

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 0)


@dataclass
class ClassModel:
    """Everything the concurrency rules need to know about one class."""

    node: ast.ClassDef
    name: str
    lock_attrs: Set[str] = field(default_factory=set)
    queue_attrs: Set[str] = field(default_factory=set)
    thread_attrs: Set[str] = field(default_factory=set)
    #: ``attr -> lock attr`` from ``# guarded-by:`` annotations.
    guarded_by: Dict[str, str] = field(default_factory=dict)
    #: Attributes annotated ``# shared`` (plus auto-shared kinds).
    shared_attrs: Set[str] = field(default_factory=set)
    #: Entry method from the class-level ``# owner-thread:`` directive.
    owner_entry: Optional[str] = None
    #: Methods carrying ``# owner-thread: external`` on their def line.
    external_methods: Set[str] = field(default_factory=set)
    methods: Dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )
    uses: List[AttrUse] = field(default_factory=list)
    #: Intra-class call graph: method -> self-methods it calls directly.
    calls: Dict[str, Set[str]] = field(default_factory=dict)

    def owner_methods(self) -> Set[str]:
        """The entry method plus everything it transitively calls."""
        if self.owner_entry is None:
            return set()
        closed: Set[str] = set()
        frontier = [self.owner_entry]
        while frontier:
            current = frontier.pop()
            if current in closed or current not in self.methods:
                continue
            closed.add(current)
            frontier.extend(self.calls.get(current, ()))
        return closed

    def owned_attrs(self) -> Set[str]:
        """Attributes the owner thread mutates or operates on.

        Lock/queue/thread attributes and ``# shared``/``# guarded-by``
        annotated ones are excluded: they are either synchronisation
        primitives themselves or governed by REP007 instead.
        """
        owners = self.owner_methods()
        excluded = (
            self.lock_attrs
            | self.queue_attrs
            | self.thread_attrs
            | self.shared_attrs
            | set(self.guarded_by)
        )
        return {
            use.attr
            for use in self.uses
            if use.method in owners and use.attr not in excluded
        }

    def uses_of(self, attr: str) -> List[AttrUse]:
        return [use for use in self.uses if use.attr == attr]


def _line_directive(ctx: LintContext, lineno: int, pattern: re.Pattern[str]) -> Optional[str]:
    if 1 <= lineno <= len(ctx.lines):
        match = pattern.search(ctx.lines[lineno - 1])
        if match:
            return match.group(1) if match.groups() else match.group(0)
    return None


def _classify_use(
    ctx: LintContext, node: ast.Attribute
) -> Optional[Tuple[str, Optional[str]]]:
    """``(kind, callee)`` for a tracked use of this ``self.x`` node."""
    if isinstance(node.ctx, ast.Store):
        return ("store", None)
    if isinstance(node.ctx, ast.Del):
        return ("del", None)
    parent = ctx.parent(node)
    if isinstance(parent, ast.Subscript) and parent.value is node:
        return ("subscript", None)
    if isinstance(parent, ast.Attribute) and parent.value is node:
        grand = ctx.parent(parent)
        if isinstance(grand, ast.Call) and grand.func is parent:
            return ("call", parent.attr)
        if isinstance(parent.ctx, (ast.Store, ast.Del)):
            # ``self.x.y = ...`` mutates the object behind self.x.
            return ("subscript", None)
    if isinstance(parent, ast.AugAssign) and parent.target is node:
        return ("store", None)
    return None


def _methods_of(cls: ast.ClassDef) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


def _build_model(ctx: LintContext, cls: ast.ClassDef) -> ClassModel:
    model = ClassModel(node=cls, name=cls.name)

    for method in _methods_of(cls):
        model.methods[method.name] = method
        if _line_directive(ctx, method.lineno, _OWNER_RE) == "external":
            model.external_methods.add(method.name)

    # Class-body directive lines (not on a def line): owner-thread entry.
    def_lines = {m.lineno for m in model.methods.values()}
    end = getattr(cls, "end_lineno", cls.lineno) or cls.lineno
    for lineno in range(cls.lineno, end + 1):
        entry = _line_directive(ctx, lineno, _OWNER_RE)
        if entry and entry != "external" and lineno not in def_lines:
            model.owner_entry = entry
            break

    for method in model.methods.values():
        callees: Set[str] = set()
        for node in ast.walk(method):
            # Attribute classification (constructor kinds + annotations)
            # keys off assignments: self.<attr> = <ctor>()  # directive
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    attr = self_attr_name(target)
                    if attr is None:
                        continue
                    kind = lock_ctor_kind(node.value)
                    if kind == "lock":
                        model.lock_attrs.add(attr)
                    elif kind == "queue":
                        model.queue_attrs.add(attr)
                    elif kind == "thread":
                        model.thread_attrs.add(attr)
                    guarded = _line_directive(ctx, node.lineno, _GUARDED_BY_RE)
                    if guarded:
                        model.guarded_by[attr] = guarded
                    if _line_directive(ctx, node.lineno, _SHARED_RE):
                        model.shared_attrs.add(attr)
            if isinstance(node, ast.AnnAssign):
                attr = self_attr_name(node.target)
                if attr is not None:
                    if node.value is not None:
                        kind = lock_ctor_kind(node.value)
                        if kind == "lock":
                            model.lock_attrs.add(attr)
                        elif kind == "queue":
                            model.queue_attrs.add(attr)
                        elif kind == "thread":
                            model.thread_attrs.add(attr)
                    guarded = _line_directive(ctx, node.lineno, _GUARDED_BY_RE)
                    if guarded:
                        model.guarded_by[attr] = guarded
                    if _line_directive(ctx, node.lineno, _SHARED_RE):
                        model.shared_attrs.add(attr)
            # Intra-class call graph: self.method(...) edges.
            if isinstance(node, ast.Call):
                callee = self_attr_name(node.func)
                if callee is not None:
                    callees.add(callee)
            # Tracked attribute uses.
            attr = self_attr_name(node)
            if attr is not None:
                classified = _classify_use(ctx, node)  # type: ignore[arg-type]
                if classified is not None:
                    use_kind, callee_name = classified
                    model.uses.append(
                        AttrUse(
                            attr=attr,
                            method=method.name,
                            node=node,
                            kind=use_kind,
                            callee=callee_name,
                            locks_held=held_locks(ctx, node),
                        )
                    )
        model.calls[method.name] = callees

    # Lock attributes are synchronisation primitives, not state; their
    # own "uses" (with self._lock:) never count as attribute uses.
    model.uses = [u for u in model.uses if u.attr not in model.lock_attrs]
    # Restrict held-lock sets to the class's known lock attributes so a
    # ``with self.file:`` context never masquerades as a guard.
    model.uses = [
        AttrUse(
            attr=u.attr,
            method=u.method,
            node=u.node,
            kind=u.kind,
            callee=u.callee,
            locks_held=frozenset(u.locks_held & model.lock_attrs),
        )
        for u in model.uses
    ]
    return model


def class_models(ctx: LintContext) -> List[ClassModel]:
    """All class models for this file, computed once and cached."""
    cached = ctx.cache.get("class_models")
    if cached is None:
        cached = [
            _build_model(ctx, node)
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef)
        ]
        ctx.cache["class_models"] = cached
    return cached  # type: ignore[return-value]
