"""File walking, suppression handling and rule execution.

Suppressions are per-line comments::

    value = data << 3        # repro: noqa[bit-width]
    value = data << 3        # repro: noqa[REP003]
    value = data << 3        # repro: noqa

Rule ids and rule names both work, comma-separated for several rules at
once.  A bare ``noqa`` silences every rule on that line.

Fixture files (and anything outside the installed package) can opt into
package-scoped rules with a directive in their first five lines::

    # lint-as: repro/simulation/example.py

which makes the engine treat them as living at that path inside the
``repro`` package.
"""

from __future__ import annotations

import ast
import json
import re
from pathlib import Path, PurePosixPath
from typing import Iterable, Optional, Sequence

from repro.analysis.base import RULES, Finding, LintContext, Rule

__all__ = ["iter_python_files", "lint_file", "lint_paths", "lint_source", "render_json"]

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([^\]]*)\])?", re.IGNORECASE)
_LINT_AS_RE = re.compile(r"^#\s*lint-as:\s*(\S+)\s*$")

#: Matches every rule on a line with a bare ``# repro: noqa``.
_ALL = "*"


def _suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> set of suppressed rule ids/names (or ``_ALL``)."""
    table: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        spec = match.group(1)
        if spec is None:
            table[lineno] = {_ALL}
        else:
            table[lineno] = {
                item.strip().lower() for item in spec.split(",") if item.strip()
            }
    return table


def _suppressed(finding: Finding, table: dict[int, set[str]]) -> bool:
    entries = table.get(finding.line)
    if not entries:
        return False
    if _ALL in entries:
        return True
    return finding.rule_id.lower() in entries or finding.rule_name.lower() in entries


def _subpath_for(path: Path) -> str:
    """Path relative to the last ``repro`` package component, if any."""
    parts = path.as_posix().split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1 :])
    return ""


def _lint_as_directive(source: str) -> Optional[str]:
    for line in source.splitlines()[:5]:
        match = _LINT_AS_RE.match(line.strip())
        if match:
            virtual = PurePosixPath(match.group(1))
            parts = virtual.parts
            if "repro" in parts:
                index = len(parts) - 1 - tuple(reversed(parts)).index("repro")
                return "/".join(parts[index + 1 :])
            return virtual.as_posix()
    return None


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(p for p in path.rglob("*.py"))
        elif path.suffix == ".py":
            out.add(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return sorted(out)


def lint_source(
    source: str,
    path: str = "<string>",
    subpath: Optional[str] = None,
    rules: Optional[Iterable[Rule]] = None,
) -> list[Finding]:
    """Run the rules over one source string; returns surviving findings."""
    if subpath is None:
        subpath = _lint_as_directive(source)
    if subpath is None:
        subpath = _subpath_for(Path(path))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                rule_id="REP000",
                rule_name="parse-error",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = LintContext(path=path, subpath=subpath, source=source, tree=tree)
    table = _suppressions(source)
    active = list(rules) if rules is not None else list(RULES.values())
    findings: list[Finding] = []
    for rule in active:
        for finding in rule.check(ctx):
            if not _suppressed(finding, table):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def lint_file(
    path: str | Path, rules: Optional[Iterable[Rule]] = None
) -> list[Finding]:
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=str(path), rules=rules)


def lint_paths(
    paths: Sequence[str | Path], rules: Optional[Iterable[Rule]] = None
) -> list[Finding]:
    """Lint every python file under the given paths."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules=rules))
    return findings


def render_json(findings: Sequence[Finding]) -> str:
    return json.dumps([f.as_dict() for f in findings], indent=2)
