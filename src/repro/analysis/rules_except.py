"""REP006 — no silent swallowing of bare/over-broad exceptions.

The resilience discipline (docs/resilience.md) is that failures are
*detected, bounded and recoverable* — never silent.  A bare ``except:``
or a catch-all ``except Exception:`` whose body neither re-raises nor
records a metric is the harness-level version of silent data corruption:
the failure happened, nothing counted it, and the bad state (a corrupt
cache entry, a half-written artifact) survives to fail again forever.
That is exactly how ``ResultCache.load`` once lost hours of Monte-Carlo
work with no trace.

A broad handler is compliant when its body contains at least one of:

* a ``raise`` (re-raise or translation into a domain error);
* a metric-recording call — ``.inc(...)``, ``.observe(...)``,
  ``.set_gauge(...)`` or ``.update_counters(...)`` — so the event shows
  up in the obs snapshot;
* a ``# repro: noqa[REP006]`` suppression with, ideally, a reason.

``except SomeSpecificError:`` handlers are not flagged: naming the
exception is itself the evidence that the author decided what may be
swallowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Finding, LintContext, Rule, register

_BROAD_NAMES = {"Exception", "BaseException"}
_METRIC_METHODS = {"inc", "observe", "set_gauge", "update_counters"}


def _broad_name(node: ast.expr) -> str | None:
    """The over-broad class name this expression catches, if any."""
    if isinstance(node, ast.Name) and node.id in _BROAD_NAMES:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in _BROAD_NAMES:
        return node.attr
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            name = _broad_name(element)
            if name is not None:
                return name
    return None


def _records_metric(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _METRIC_METHODS
        ):
            return True
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


@register
class BroadExceptRule(Rule):
    id = "REP006"
    name = "broad-except"
    description = (
        "bare or catch-all except handlers must re-raise or record a "
        "metric so failures are detected, not silently swallowed"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                caught = "bare except"
            else:
                name = _broad_name(node.type)
                if name is None:
                    continue
                caught = f"except {name}"
            if _reraises(node) or _records_metric(node):
                continue
            yield self.finding(
                ctx,
                node,
                f"{caught} swallows failures invisibly; re-raise, record "
                "a metric (e.g. obs.metrics.inc), or narrow the handler "
                "to the exceptions you mean to tolerate",
            )
