"""REP003 — codeword arithmetic must stay inside its declared width.

Python ints are unbounded, hardware registers are not.  A left shift on
a codeword/block integer in ``ecc/`` or ``compression/`` that is not
masked back to a declared width models a register that silently grew —
the resulting value round-trips through the simulator looking valid
while no real memory controller could hold it.  Two checks:

**Unmasked left shifts.**  ``value << n`` must sit under an explicit
mask (``& ((1 << w) - 1)``) within the same expression.  Recognised-safe
shift idioms that need no mask:

* shifts of constants (``1 << i`` bit selects, ``0b11 << k`` field
  placement) and of mask expressions (``((1 << w) - 1) << start``) —
  bounded by construction;
* shifts of pre-masked operands (``(x & 0xFF) << 8``);
* shifts inside comparisons (bounds checks like ``if x >= 1 << w``);
* shifts whose result feeds ``int.to_bytes``/``int_to_bytes`` — both
  raise ``OverflowError`` on out-of-width values, which *is* the check.

**Unvalidated 64-byte blocks.**  A public function in these packages
taking a parameter named ``block`` must validate its length: call
``check_block``, inspect ``len(block)``, or delegate ``block`` verbatim
to another callable that does.  Abstract stubs (docstring + ``raise`` /
``...``) are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Finding, LintContext, Rule, dotted_name, register

_SCOPED_PACKAGES = ("ecc", "compression")
_VALIDATING_SINKS = {"to_bytes", "int_to_bytes", "check_block"}


def _is_mask_expr(node: ast.expr) -> bool:
    """``(1 << n) - 1`` (possibly nested in parens): mask construction."""
    return (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Sub)
        and isinstance(node.right, ast.Constant)
        and node.right.value == 1
        and isinstance(node.left, ast.BinOp)
        and isinstance(node.left.op, ast.LShift)
    )


def _operand_is_bounded(node: ast.BinOp) -> bool:
    left = node.left
    if isinstance(left, ast.Constant):
        return True  # constant field placement (1 << i, 0b11 << k)
    if isinstance(left, ast.BinOp) and isinstance(left.op, ast.BitAnd):
        return True  # pre-masked operand: (x & 0xFF) << 8
    if _is_mask_expr(left):
        return True  # shifted mask: ((1 << w) - 1) << start
    return False


def _shift_is_allowed(ctx: LintContext, node: ast.BinOp) -> bool:
    if _operand_is_bounded(node):
        return True
    for ancestor in ctx.expr_ancestors(node):
        if isinstance(ancestor, ast.BinOp) and isinstance(ancestor.op, ast.BitAnd):
            return True  # masked within the expression
        if isinstance(ancestor, ast.Compare):
            return True  # bounds check, not value construction
        if isinstance(ancestor, ast.Call):
            name = dotted_name(ancestor.func)
            if name is not None and name.rsplit(".", 1)[-1] in _VALIDATING_SINKS:
                return True  # sink raises OverflowError out of width
    return False


def _body_after_docstring(func: ast.FunctionDef) -> list[ast.stmt]:
    body = list(func.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    return body


def _is_stub(func: ast.FunctionDef) -> bool:
    body = _body_after_docstring(func)
    if not body:
        return True
    if len(body) == 1:
        stmt = body[0]
        if isinstance(stmt, (ast.Raise, ast.Pass)):
            return True
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            return True  # bare `...`
    return False


def _validates_block(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        leaf = name.rsplit(".", 1)[-1] if name else None
        args = list(node.args) + [kw.value for kw in node.keywords]
        passes_block = any(
            isinstance(arg, ast.Name) and arg.id == "block" for arg in args
        )
        if leaf == "check_block" and passes_block:
            return True
        if leaf == "len" and passes_block:
            return True
        if passes_block and leaf not in ("len",):
            # Verbatim delegation: the callee owns validation.
            return True
    return False


@register
class BitWidthRule(Rule):
    id = "REP003"
    name = "bit-width"
    description = (
        "left shifts in ecc/compression must be masked to a declared "
        "width; public functions taking 64-byte blocks must validate length"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not ctx.in_packages(*_SCOPED_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.LShift):
                if not _shift_is_allowed(ctx, node):
                    yield self.finding(
                        ctx,
                        node,
                        "unmasked left shift on codeword arithmetic; mask the "
                        "expression to its declared width "
                        "(e.g. `(x << n) & ((1 << w) - 1)`)",
                    )
            elif isinstance(node, ast.FunctionDef):
                if node.name.startswith("_") or _is_stub(node):
                    continue
                params = [
                    a.arg
                    for a in (
                        node.args.posonlyargs + node.args.args + node.args.kwonlyargs
                    )
                ]
                if "block" not in params:
                    continue
                if not _validates_block(node):
                    yield self.finding(
                        ctx,
                        node,
                        f"{node.name}() takes a 64-byte block but never "
                        "validates its length; call check_block(block) "
                        "or compare len(block)",
                    )
