"""REP010 — thread discipline: every service thread is daemonized or joined.

A non-daemon thread that nobody joins outlives the work that spawned
it: shutdown hangs waiting on it, test processes never exit, and a
worker that died silently leaves its queue draining into nowhere.  In
``repro.service`` (and the other threading call-sites the concurrency
sweep covers) every ``threading.Thread(...)`` must either:

* pass ``daemon=True`` at construction, or
* be joined: a ``self.<attr> = Thread(...)`` must have a matching
  ``self.<attr>.join(...)`` somewhere in the class (the shutdown path),
  and a local ``t = Thread(...)`` must have a ``.join(...)`` call in
  the same function (a join on any local name counts — thread handles
  routinely travel through lists, as in the loadgen's driver pool).

The check is lexical, not a liveness proof: it catches the
fire-and-forget construction (no ``daemon=``, no join anywhere on the
shutdown path), which is the bug class that matters.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.base import Finding, LintContext, Rule, register, dotted_name
from repro.analysis.locks import THREAD_CONSTRUCTORS, self_attr_name

_SCOPED_PACKAGES = ("service", "experiments", "analysis")
_SCOPED_MODULES = ("kernels.py",)


def _is_thread_ctor(node: ast.Call) -> bool:
    name = dotted_name(node.func)
    return name is not None and name in THREAD_CONSTRUCTORS


def _daemonized(node: ast.Call) -> bool:
    for keyword in node.keywords:
        if keyword.arg == "daemon":
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            )
    return False


def _assigned_self_attr(ctx: LintContext, node: ast.Call) -> Optional[str]:
    parent = ctx.parent(node)
    if isinstance(parent, ast.Assign):
        for target in parent.targets:
            attr = self_attr_name(target)
            if attr is not None:
                return attr
    if isinstance(parent, ast.AnnAssign):
        return self_attr_name(parent.target)
    return None


def _join_on_attr(scope: ast.AST, attr: str) -> bool:
    for node in ast.walk(scope):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and self_attr_name(node.func.value) == attr
        ):
            return True
    return False


def _join_on_any_local(scope: ast.AST) -> bool:
    for node in ast.walk(scope):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and isinstance(node.func.value, ast.Name)
        ):
            return True
    return False


@register
class ThreadDisciplineRule(Rule):
    id = "REP010"
    name = "thread-discipline"
    description = (
        "threading.Thread(...) must be daemonized (daemon=True) or "
        "joined on the shutdown path"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not (
            ctx.in_packages(*_SCOPED_PACKAGES) or ctx.subpath in _SCOPED_MODULES
        ):
            return
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and _is_thread_ctor(node)):
                continue
            if _daemonized(node):
                continue
            attr = _assigned_self_attr(ctx, node)
            if attr is not None:
                enclosing_class = self._enclosing_class(ctx, node)
                scope: ast.AST = (
                    enclosing_class if enclosing_class is not None else ctx.tree
                )
                if _join_on_attr(scope, attr):
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"thread stored in self.{attr} is neither daemonized "
                    f"nor joined anywhere in the class — add daemon=True "
                    f"or join it on the shutdown path",
                )
                continue
            func = ctx.enclosing_function(node)
            scope = func if func is not None else ctx.tree
            if _join_on_any_local(scope):
                continue
            yield self.finding(
                ctx,
                node,
                "thread is neither daemonized nor joined in the enclosing "
                "scope — fire-and-forget threads hang shutdown; pass "
                "daemon=True or join the handle",
            )

    @staticmethod
    def _enclosing_class(ctx: LintContext, node: ast.AST) -> Optional[ast.ClassDef]:
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None
