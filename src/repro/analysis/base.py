"""Linter core: findings, the rule base class, registry and lint context.

A :class:`Rule` analyses one file at a time through a
:class:`LintContext`, which owns the parsed AST plus a parent map so
rules can walk *up* the tree (is this shift under a mask? is this call
under an ``enabled`` guard?) as easily as down.
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass
from typing import Iterator, Optional, Type

__all__ = ["Finding", "LintContext", "Rule", "RULES", "register"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    rule_name: str
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.rule_name}] {self.message}"
        )

    def as_dict(self) -> dict:
        return asdict(self)


class LintContext:
    """Everything a rule needs to analyse one parsed file."""

    def __init__(
        self,
        path: str,
        subpath: str,
        source: str,
        tree: ast.Module,
    ) -> None:
        #: Path as given on the command line (used in findings).
        self.path = path
        #: Path relative to the ``repro`` package root (posix separators,
        #: e.g. ``"ecc/hsiao.py"``); empty for files outside the package.
        #: Fixture files override it with a ``# lint-as:`` directive.
        self.subpath = subpath
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        #: Per-file scratch space for analyses shared between rules (the
        #: concurrency rules all read one class-level dataflow model; see
        #: :func:`repro.analysis.dataflow.class_models`).
        self.cache: dict[str, object] = {}
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Yield enclosing nodes, innermost first."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def expr_ancestors(self, node: ast.AST) -> Iterator[ast.expr]:
        """Ancestors up to (not including) the enclosing statement."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.stmt):
                return
            if isinstance(ancestor, ast.expr):
                yield ancestor

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.FunctionDef | ast.AsyncFunctionDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def in_packages(self, *packages: str) -> bool:
        """Is this file inside one of the given top-level repro packages?"""
        if not self.subpath:
            return False
        head = self.subpath.split("/", 1)[0]
        return head in packages


class Rule:
    """Base class: subclasses set the metadata and implement ``check``."""

    id: str = ""
    name: str = ""
    description: str = ""

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.id,
            rule_name=self.name,
            message=message,
        )


#: Rule registry, keyed by rule id (``REP001``..).  Populated at import
#: time by the :func:`register` decorator on each rule module.
RULES: dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate the rule and add it to the registry."""
    rule = cls()
    if not rule.id or not rule.name:
        raise ValueError(f"rule {cls.__name__} must define id and name")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    RULES[rule.id] = rule
    return cls


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
