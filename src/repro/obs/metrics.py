"""Hierarchical metrics registry for the simulation stack.

Metric names are dot-separated paths (``controller.alias_rejects``,
``dram.bank.c0r0b3.row_hits``, ``llc.pins``) so related counters group
into a tree for reporting.  Three metric types:

``Counter``
    Monotonic count (``inc``).  Snapshots subtract cleanly (``delta``)
    and sum across cores/runs (``merge``).
``Gauge``
    Point-in-time value (``set``).  Merge takes the max, which is the
    right reduction for the high-water marks the simulator tracks
    (peak ECC entries, makespan).
``Histogram``
    Power-of-two bucketed distribution (``observe``) with deterministic
    percentile estimates — O(1) memory however many latencies land in it.

A :class:`MetricsRegistry` owns the metrics; :class:`NullRegistry` is the
default no-op implementation whose ``inc``/``set``/``observe`` do nothing,
so instrumented hot paths cost one no-op method call (or one ``enabled``
check) when observability is off.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Optional, Sequence, Union

__all__ = [
    "Counter",
    "DEFAULT_PERCENTILES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "percentile_key",
    "render_tree",
]

#: Default percentile set reported by :meth:`Histogram.as_dict`.
DEFAULT_PERCENTILES = (50.0, 90.0, 99.0, 99.9)

#: Backwards-compatible alias (pre-p99.9 name).
_PERCENTILES = DEFAULT_PERCENTILES


def percentile_key(pct: float) -> str:
    """Snapshot key for a percentile: ``p50``, ``p99``, ``p99.9``."""
    return f"p{pct:g}"


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Point-in-time value (merge keeps the max)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def max(self, value: float) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Log2-bucketed histogram with deterministic percentile estimates.

    Buckets cover ``2**k`` for ``k`` in ``[_MIN_EXP, _MAX_EXP)``; values
    outside clamp to the edge buckets.  Percentiles return the geometric
    midpoint of the bucket holding the requested rank, so repeated runs of
    a deterministic simulation report identical numbers.

    The reported percentile set is configurable per histogram
    (``percentiles=(50, 95, 99.9)``); the default adds ``p99.9`` to the
    classic p50/p90/p99 trio.  Whatever the set, ``merge_dict`` stays
    lossless: merging folds the raw buckets, not the derived percentiles.
    """

    _MIN_EXP = -10  # ~1e-3: sub-ns latencies clamp here
    _MAX_EXP = 50  # ~1e15: covers any ns quantity a run produces

    __slots__ = ("name", "count", "total", "min", "max", "percentiles", "_buckets")

    def __init__(
        self, name: str, percentiles: Optional[Sequence[float]] = None
    ) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.percentiles: tuple[float, ...] = (
            tuple(percentiles) if percentiles is not None else DEFAULT_PERCENTILES
        )
        self._buckets = [0] * (self._MAX_EXP - self._MIN_EXP)

    def _bucket_index(self, value: float) -> int:
        if value <= 0:
            return 0
        exp = int(math.floor(math.log2(value)))
        return min(max(exp - self._MIN_EXP, 0), len(self._buckets) - 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._buckets[self._bucket_index(value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """Estimate the ``pct``-th percentile (bucket geometric midpoint)."""
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(self.count * pct / 100.0))
        seen = 0
        for index, bucket_count in enumerate(self._buckets):
            seen += bucket_count
            if seen >= rank:
                low = 2.0 ** (index + self._MIN_EXP)
                return min(max(low * math.sqrt(2.0), self.min), self.max)
        return self.max

    def as_dict(self) -> dict[str, Any]:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "total": self.total,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            **{percentile_key(p): self.percentile(p) for p in self.percentiles},
            "buckets": {
                str(i + self._MIN_EXP): n
                for i, n in enumerate(self._buckets)
                if n
            },
        }

    def merge_dict(self, data: Mapping[str, Any]) -> None:
        """Fold a snapshot produced by :meth:`as_dict` into this histogram."""
        if not data.get("count"):
            return
        self.count += data["count"]
        self.total += data.get("total", data.get("sum", 0.0))
        self.min = min(self.min, data["min"])
        self.max = max(self.max, data["max"])
        for key, n in data.get("buckets", {}).items():
            index = int(key) - self._MIN_EXP
            self._buckets[min(max(index, 0), len(self._buckets) - 1)] += n


class MetricsRegistry:
    """Creates, stores, snapshots and merges hierarchically named metrics."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- access / creation ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, percentiles: Optional[Sequence[float]] = None
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(
                name, percentiles=percentiles
            )
        return metric

    # -- convenience mutators -----------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def update_counters(self, prefix: str, values: Mapping[str, int]) -> None:
        """Set ``prefix.key`` counters to absolute values (idempotent).

        Components that keep their own stats dataclasses publish through
        this: the registry ends up holding the same totals however many
        times the stats are re-published during a run.
        """
        for key, value in values.items():
            counter = self.counter(f"{prefix}.{key}")
            counter.value = int(value)

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-serialisable state of every metric."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.as_dict() for n, h in sorted(self._histograms.items())
            },
        }

    @staticmethod
    def delta(before: Mapping[str, Any], after: Mapping[str, Any]) -> dict[str, Any]:
        """Counter differences between two snapshots (gauges: after wins)."""
        counters = {
            name: value - before.get("counters", {}).get(name, 0)
            for name, value in after.get("counters", {}).items()
        }
        return {
            "counters": counters,
            "gauges": dict(after.get("gauges", {})),
            "histograms": dict(after.get("histograms", {})),
        }

    def merge(
        self, other: Union["MetricsRegistry", Mapping[str, Any]]
    ) -> "MetricsRegistry":
        """Fold another registry (or snapshot) into this one.

        Counters add, gauges keep the max, histograms combine — the
        reduction used to collapse per-core registries into a system view.
        """
        snap = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).max(value)
        for name, data in snap.get("histograms", {}).items():
            self.histogram(name).merge_dict(data)
        return self

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def is_empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)

    def render_tree(self) -> str:
        return render_tree(self.snapshot())


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:  # pragma: no cover - trivial
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def max(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """No-op registry: every lookup returns a shared do-nothing metric."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(
        self, name: str, percentiles: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._null_histogram

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def update_counters(self, prefix: str, values: Mapping[str, int]) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: Shared default — safe to hand to any number of components.
NULL_REGISTRY = NullRegistry()


def _tree_insert(tree: dict[str, Any], name: str, leaf: str) -> None:
    parts = name.split(".")
    node = tree
    for part in parts[:-1]:
        node = node.setdefault(part, {})
    node[parts[-1]] = leaf


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.3f}"
    return f"{int(value):,}"


def render_tree(snapshot: Mapping[str, Any]) -> str:
    """Render a snapshot as an indented metrics tree.

    Example::

        controller
          reads ......... 1,204
          writes ........ 377
        dram
          row_hits ...... 903
    """
    tree: dict = {}
    for name, value in snapshot.get("counters", {}).items():
        _tree_insert(tree, name, _format_value(value))
    for name, value in snapshot.get("gauges", {}).items():
        _tree_insert(tree, name, _format_value(value))
    for name, data in snapshot.get("histograms", {}).items():
        if data.get("count"):
            # Custom-percentile histograms may not carry p50/p99; fall
            # back to min/max bounds rather than KeyError-ing the render.
            p50 = data.get("p50", data.get("min", 0.0))
            p99 = data.get("p99", data.get("max", 0.0))
            leaf = (
                f"n={data['count']:,} mean={data['mean']:,.1f} "
                f"p50={p50:,.1f} p99={p99:,.1f} "
                f"max={data['max']:,.1f}"
            )
        else:
            leaf = "n=0"
        _tree_insert(tree, name, leaf)
    if not tree:
        return "(no metrics recorded)"

    lines: list[str] = []

    def walk(node: dict[str, Any], depth: int) -> None:
        pad = "  " * depth
        width = max(
            (len(k) for k, v in node.items() if not isinstance(v, dict)),
            default=0,
        )
        for key in sorted(node):
            value = node[key]
            if isinstance(value, dict):
                lines.append(f"{pad}{key}")
                walk(value, depth + 1)
            else:
                dots = "." * (width - len(key) + 3)
                lines.append(f"{pad}{key} {dots} {value}")

    walk(tree, 0)
    return "\n".join(lines)
