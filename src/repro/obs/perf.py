# repro: sanctioned[wall-clock]
"""Performance-measurement protocol for the benchmark harness.

Every timing number the repo publishes (``BENCH_*.json`` artifacts, the
trajectory history, the ad-hoc speedup guards in ``benchmarks/``) comes
through this module so the protocol is consistent everywhere:

* the monotonic high-resolution clock (``time.perf_counter_ns``),
* explicit warmup iterations (JIT'd numpy LUTs, page cache, allocator
  warmth) that are *never* counted,
* a pinned number of repeats with per-repeat samples kept, so artifacts
  report distributions (min/p50/p90/p99) rather than one noisy number,
* an environment fingerprint (interpreter, platform, CPU count, scale)
  stamped into every artifact so trajectory entries are comparable only
  when they should be.

This is host-side *measurement* code: wall-clock use here is sanctioned
(see the directive on line 1 and docs/static-analysis.md) — the REP001
determinism rule keeps rejecting wall-clock reads in simulation code.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Sequence

__all__ = [
    "CLOCK_NAME",
    "TimingStats",
    "best_seconds",
    "config_hash",
    "fingerprint",
    "git_sha",
    "measure",
    "now_ns",
    "percentile_of",
]

#: The one clock the protocol uses, named so artifacts can record it.
CLOCK_NAME = "time.perf_counter_ns"


def now_ns() -> int:
    """The protocol clock: monotonic, ns resolution, never goes back."""
    return time.perf_counter_ns()


def percentile_of(samples: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile over raw samples (deterministic, no interp)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * pct // 100))  # ceil without float error
    return ordered[min(int(rank) - 1, len(ordered) - 1)]


@dataclass(frozen=True)
class TimingStats:
    """Distribution of one case's per-repeat wall times (nanoseconds)."""

    samples_ns: tuple[int, ...]
    warmup: int

    @property
    def repeats(self) -> int:
        return len(self.samples_ns)

    @property
    def min_ns(self) -> int:
        return min(self.samples_ns) if self.samples_ns else 0

    @property
    def max_ns(self) -> int:
        return max(self.samples_ns) if self.samples_ns else 0

    @property
    def mean_ns(self) -> float:
        if not self.samples_ns:
            return 0.0
        return sum(self.samples_ns) / len(self.samples_ns)

    @property
    def median_ns(self) -> float:
        return self.percentile(50.0)

    def percentile(self, pct: float) -> float:
        return percentile_of(self.samples_ns, pct)

    @property
    def best_seconds(self) -> float:
        return self.min_ns / 1e9

    def as_dict(self) -> dict[str, Any]:
        """Artifact form: summary stats plus the raw samples."""
        return {
            "repeats": self.repeats,
            "warmup": self.warmup,
            "ns": {
                "min": self.min_ns,
                "max": self.max_ns,
                "mean": self.mean_ns,
                "median": self.median_ns,
                "p50": self.percentile(50.0),
                "p90": self.percentile(90.0),
                "p99": self.percentile(99.0),
            },
            "samples_ns": list(self.samples_ns),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TimingStats":
        return cls(
            samples_ns=tuple(int(s) for s in data.get("samples_ns", ())),
            warmup=int(data.get("warmup", 0)),
        )


def measure(
    fn: Callable[[], Any],
    repeats: int = 5,
    warmup: int = 1,
    inner: int = 1,
) -> TimingStats:
    """Time ``fn`` under the shared protocol.

    ``warmup`` untimed calls, then ``repeats`` timed ones on the
    monotonic ns clock.  ``inner > 1`` loops the callable inside each
    timed repeat and divides — for sub-microsecond cases where one call
    is below clock resolution.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if inner < 1:
        raise ValueError("inner must be >= 1")
    for _ in range(warmup):
        fn()
    samples: list[int] = []
    for _ in range(repeats):
        start = time.perf_counter_ns()
        for _ in range(inner):
            fn()
        samples.append((time.perf_counter_ns() - start) // inner)
    return TimingStats(samples_ns=tuple(samples), warmup=warmup)


def best_seconds(
    fn: Callable[[], Any],
    rounds: int = 7,
    reps: int = 4,
    warmup: int = 1,
) -> float:
    """Best-of-``rounds`` mean-of-``reps`` seconds (speedup-guard shape).

    The benchmark guards compare ratios of two measurements, where the
    *minimum* over rounds is the noise-robust estimator; this wraps
    :func:`measure` so those guards inherit warmup + the ns clock
    instead of hand-rolling ``time.perf_counter()`` loops.
    """
    stats = measure(fn, repeats=rounds, warmup=warmup, inner=reps)
    return stats.best_seconds


def git_sha(short: bool = False) -> str:
    """The repo's current commit, or ``"unknown"`` outside a checkout."""
    cmd = ["git", "rev-parse", "--short" if short else "--verify", "HEAD"]
    try:
        out = subprocess.run(
            cmd,
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def fingerprint(extra: Optional[Mapping[str, Any]] = None) -> dict[str, Any]:
    """Environment stamp embedded in every ``BENCH_*.json`` artifact."""
    stamp: dict[str, Any] = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
        "scale": os.environ.get("REPRO_SCALE", "") or "default",
    }
    if extra:
        stamp.update(extra)
    return stamp


def config_hash(payload: Mapping[str, Any]) -> str:
    """Short stable hash of a protocol/config description.

    Two trajectory entries are directly comparable only when their
    config hashes match (same suite make-up, same protocol, same scale);
    the compare/gate machinery warns across differing hashes.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:12]
