# repro: sanctioned[wall-clock]
"""Sampled structured event tracing (JSONL sink).

The tracer emits one JSON object per line: per-access events from the
simulator (read/write, protection mode, compressed/alias flags, ECC-region
blocks touched, DRAM latency) and span records bracketing simulator
phases.  A global sampling rate keeps FULL-scale runs fast — at rate ``r``
each candidate event is kept with probability ``r``, decided by a private
PRNG so a fixed seed reproduces the exact same kept-set run after run.

Spans are never sampled out: there are few of them and they carry the
wall-clock phase structure the profiler summarises.

Cross-worker sharding
---------------------

A tracer cannot cross a process boundary, so a parallel sweep gives each
job its *own* shard tracer (one JSONL file per job, built from a
picklable :class:`TraceShardSpec`) and the parent merges the shards back
into its sink **in job order** with :meth:`EventTracer.absorb`.  Shard
tracers run in *deterministic* mode: span records carry no ``wall_ms``
(host time is nondeterministic), every record is stamped with its job
index, and the sampling PRNG is seeded per job — so a parallel
``--trace --jobs N`` run merges to the byte-identical event stream a
serial ``--trace`` run produces.
"""

from __future__ import annotations

import hashlib
import io
import json
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Iterator, Mapping, Optional, Sequence, Union

__all__ = [
    "EventTracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceShardSpec",
    "derive_shard_seed",
    "summarize_trace",
]


def derive_shard_seed(seed: int, index: int) -> int:
    """Stable per-shard sampling seed (platform-independent hash)."""
    digest = hashlib.sha256(f"{seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class EventTracer:
    """Writes sampled simulation events to a JSONL sink.

    ``deterministic=True`` drops the one nondeterministic field a trace
    carries (span ``wall_ms``), making the stream a pure function of the
    emitted events + seed — the mode shard tracers run in so parallel
    merges can be byte-compared against serial runs.  ``static_fields``
    are stamped into every record (shards use ``{"job": index}`` to
    namespace their events within the merged stream).
    """

    enabled = True

    def __init__(
        self,
        sink: Union[str, Path, IO[str]],
        sample_rate: float = 1.0,
        seed: int = 0,
        deterministic: bool = False,
        static_fields: Optional[Mapping[str, object]] = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be within [0, 1]")
        self.sample_rate = sample_rate
        self.seed = seed
        self.deterministic = deterministic
        self.static_fields = dict(static_fields) if static_fields else {}
        self._rng = random.Random(seed)
        self._seq = 0
        self.emitted = 0
        self.dropped = 0
        if isinstance(sink, (str, Path)):
            self._path: Optional[Path] = Path(sink)
            self._file: IO[str] = open(self._path, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._path = None
            self._file = sink
            self._owns_file = False

    # -- event emission ------------------------------------------------------

    def _keep(self) -> bool:
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        return self._rng.random() < self.sample_rate

    def emit(self, kind: str, **fields: object) -> bool:
        """Record one event; returns whether it survived sampling."""
        self._seq += 1
        if not self._keep():
            self.dropped += 1
            return False
        record = {"seq": self._seq, "kind": kind}
        if self.static_fields:
            record.update(self.static_fields)
        record.update(fields)
        self._file.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.emitted += 1
        return True

    @contextmanager
    def span(self, name: str, **fields: object) -> Iterator[None]:
        """Bracket a simulator phase; emits a span event with wall time.

        In deterministic mode the record omits ``wall_ms`` — host time
        attribution for sharded runs comes from the profiler/perf layer
        instead, so the trace stream stays byte-comparable.
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            self._seq += 1
            record: dict[str, object] = {
                "seq": self._seq,
                "kind": "span",
                "name": name,
            }
            if not self.deterministic:
                wall_ms = (time.perf_counter() - start) * 1e3
                record["wall_ms"] = round(wall_ms, 3)
            if self.static_fields:
                record.update(self.static_fields)
            record.update(fields)
            self._file.write(json.dumps(record, separators=(",", ":")) + "\n")
            self.emitted += 1

    def absorb(self, paths: Sequence[Union[str, Path]]) -> int:
        """Append shard files to this sink in order, renumbering ``seq``.

        The merge is deterministic by construction: shards are read in
        the order given (the runner passes them in job-list order) and
        each record's ``seq`` is rewritten to continue this tracer's own
        sequence.  Missing shards (a job that emitted nothing) are
        skipped.  Returns the number of records absorbed.
        """
        absorbed = 0
        for path in paths:
            try:
                handle = open(path, "r", encoding="utf-8")
            except FileNotFoundError:
                continue
            with handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    record = json.loads(line)
                    self._seq += 1
                    record["seq"] = self._seq
                    self._file.write(
                        json.dumps(record, separators=(",", ":")) + "\n"
                    )
                    self.emitted += 1
                    absorbed += 1
        return absorbed

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        self.flush()
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "EventTracer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def path(self) -> Optional[Path]:
        return self._path


class NullTracer(EventTracer):
    """The default tracer: drops everything, opens nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(io.StringIO(), sample_rate=0.0)

    def emit(self, kind: str, **fields: object) -> bool:
        return False

    @contextmanager
    def span(self, name: str, **fields: object) -> Iterator[None]:
        yield

    def absorb(self, paths: Sequence[Union[str, Path]]) -> int:
        return 0

    def close(self) -> None:
        pass


#: Shared default — safe to hand to any number of components.
NULL_TRACER = NullTracer()


@dataclass(frozen=True)
class TraceShardSpec:
    """Picklable recipe for per-job shard tracers (crosses the fork).

    The parent creates one spec per sweep; each job — in a pool worker
    or on the serial path — builds its shard tracer from the spec and
    its job index.  Span/event identity is namespaced by job index (a
    ``"job"`` field on every record); worker pids never enter the
    stream, which would break serial-vs-parallel byte-identity.
    """

    directory: str
    sample_rate: float = 1.0
    seed: int = 0

    def shard_path(self, index: int) -> Path:
        return Path(self.directory) / f"shard-{index:06d}.jsonl"

    def tracer_for(self, index: int) -> EventTracer:
        """A deterministic shard tracer for job ``index`` (truncates)."""
        return EventTracer(
            self.shard_path(index),
            sample_rate=self.sample_rate,
            seed=derive_shard_seed(self.seed, index),
            deterministic=True,
            static_fields={"job": index},
        )


def summarize_trace(path: Union[str, Path]) -> dict[str, Any]:
    """Parse a trace file into a summary dict (raises on malformed lines).

    Returns event counts by kind, span wall-time totals by name, and
    latency aggregates over ``latency_ns`` fields of access events.
    """
    counts: dict[str, int] = {}
    spans: dict[str, dict[str, Any]] = {}
    latencies: list[float] = []
    total = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: malformed trace line: {exc}"
                ) from exc
            total += 1
            kind = record.get("kind", "?")
            counts[kind] = counts.get(kind, 0) + 1
            if kind == "span":
                entry = spans.setdefault(
                    record.get("name", "?"), {"count": 0, "wall_ms": 0.0}
                )
                entry["count"] += 1
                entry["wall_ms"] += record.get("wall_ms", 0.0)
            elif "latency_ns" in record:
                latencies.append(record["latency_ns"])
    summary: dict[str, Any] = {"events": total, "by_kind": counts, "spans": spans}
    if latencies:
        latencies.sort()
        summary["latency_ns"] = {
            "count": len(latencies),
            "mean": sum(latencies) / len(latencies),
            "p50": latencies[len(latencies) // 2],
            "p99": latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))],
            "max": latencies[-1],
        }
    return summary


def render_trace_summary(summary: dict[str, Any]) -> str:
    """Human-readable rendering of :func:`summarize_trace`'s output."""
    lines = [f"events: {summary['events']}"]
    for kind in sorted(summary["by_kind"]):
        lines.append(f"  {kind}: {summary['by_kind'][kind]}")
    if summary.get("spans"):
        lines.append("spans:")
        for name in sorted(summary["spans"]):
            entry = summary["spans"][name]
            lines.append(
                f"  {name}: {entry['count']}x, {entry['wall_ms']:.1f} ms"
            )
    lat = summary.get("latency_ns")
    if lat:
        lines.append(
            f"access latency (ns): n={lat['count']} mean={lat['mean']:.1f} "
            f"p50={lat['p50']:.1f} p99={lat['p99']:.1f} max={lat['max']:.1f}"
        )
    return "\n".join(lines)
