# repro: sanctioned[wall-clock]
"""Wall-clock profiling hooks for the simulator's host-side hot paths.

The metrics registry counts *simulated* quantities; this module measures
where the *host* (Python) time goes: phase timers around the simulator's
main loop stages and cheap call counters on hot paths.  The default
:class:`NullProfiler` reduces every hook to a no-op so un-instrumented
runs pay nothing beyond the call.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["Profiler", "NullProfiler", "NULL_PROFILER"]


class Profiler:
    """Accumulates wall time per phase and counts per hot-path label."""

    enabled = True

    def __init__(self) -> None:
        self.phase_seconds: dict[str, float] = {}
        self.phase_calls: dict[str, int] = {}
        self.counts: dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + elapsed
            self.phase_calls[name] = self.phase_calls.get(name, 0) + 1

    def count(self, name: str, amount: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + amount

    def summary(self) -> dict[str, Any]:
        return {
            "phases": {
                name: {
                    "calls": self.phase_calls[name],
                    "seconds": self.phase_seconds[name],
                }
                for name in sorted(self.phase_seconds)
            },
            "counts": dict(sorted(self.counts.items())),
        }

    def publish(self, registry: "MetricsRegistry", prefix: str = "profile") -> None:
        """Mirror the profile into a metrics registry (gauges + counters)."""
        for name, seconds in self.phase_seconds.items():
            registry.set_gauge(f"{prefix}.{name}.seconds", seconds)
            registry.set_gauge(f"{prefix}.{name}.calls", self.phase_calls[name])
        registry.update_counters(prefix, self.counts)

    def report(self) -> str:
        lines = ["phase                     calls      seconds"]
        for name in sorted(self.phase_seconds):
            lines.append(
                f"{name:<24} {self.phase_calls[name]:>6} "
                f"{self.phase_seconds[name]:>12.4f}"
            )
        if self.counts:
            lines.append("hot-path counters:")
            for name in sorted(self.counts):
                lines.append(f"  {name}: {self.counts[name]:,}")
        return "\n".join(lines)

    def clear(self) -> None:
        self.phase_seconds.clear()
        self.phase_calls.clear()
        self.counts.clear()


class NullProfiler(Profiler):
    """No-op profiler (the default)."""

    enabled = False

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        yield

    def count(self, name: str, amount: int = 1) -> None:
        pass

    def publish(self, registry: "MetricsRegistry", prefix: str = "profile") -> None:
        pass


#: Shared default — safe to hand to any number of components.
NULL_PROFILER = NullProfiler()
