"""Unified observability for the COP simulation stack.

One :class:`Observability` object bundles the three surfaces every layer
of the simulator shares:

* :mod:`repro.obs.metrics` — hierarchical Counter/Gauge/Histogram registry,
* :mod:`repro.obs.trace` — sampled structured JSONL event tracing,
* :mod:`repro.obs.profile` — wall-clock phase timers and call counters.

The module-level default (:data:`NULL_OBS`) is a no-op on every surface,
so instrumented components cost (at most) one ``enabled`` check per hot
operation until someone opts in — via :func:`Observability.create`, the
CLI's ``--obs``/``--trace`` flags, or the environment::

    REPRO_OBS=1                  enable the metrics registry + profiler
    REPRO_TRACE=/path/out.jsonl  also write a structured event trace
    REPRO_TRACE_SAMPLE=0.01      keep 1% of per-access events
    REPRO_TRACE_SEED=7           sampling PRNG seed (default 0)

Components receive the bundle at construction; code that cannot thread it
explicitly (the experiment harnesses) uses the process-wide current bundle
(:func:`get_obs`/:func:`set_obs`), which initialises itself from the
environment on first use.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Optional, Union

from repro.obs.metrics import (
    DEFAULT_PERCENTILES,
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    render_tree,
)
from repro.obs.perf import TimingStats, best_seconds, fingerprint, measure
from repro.obs.profile import NULL_PROFILER, NullProfiler, Profiler
from repro.obs.trace import (
    NULL_TRACER,
    EventTracer,
    NullTracer,
    TraceShardSpec,
    summarize_trace,
)

__all__ = [
    "Observability",
    "NULL_OBS",
    "get_obs",
    "set_obs",
    "DEFAULT_PERCENTILES",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "EventTracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceShardSpec",
    "Profiler",
    "NullProfiler",
    "NULL_PROFILER",
    "TimingStats",
    "best_seconds",
    "fingerprint",
    "measure",
    "render_tree",
    "summarize_trace",
]


@dataclass
class Observability:
    """The bundle handed to every instrumented component."""

    metrics: MetricsRegistry = field(default_factory=lambda: NULL_REGISTRY)
    trace: EventTracer = field(default_factory=lambda: NULL_TRACER)
    profile: Profiler = field(default_factory=lambda: NULL_PROFILER)

    @property
    def enabled(self) -> bool:
        """Is any surface live?  Hot paths gate their work on this."""
        return self.metrics.enabled or self.trace.enabled

    @classmethod
    def create(
        cls,
        trace_sink: Union[str, Path, IO[str], None] = None,
        sample_rate: float = 1.0,
        seed: int = 0,
    ) -> "Observability":
        """A live bundle: real registry + profiler, tracer if a sink given."""
        tracer = (
            EventTracer(trace_sink, sample_rate=sample_rate, seed=seed)
            if trace_sink is not None
            else NULL_TRACER
        )
        return cls(metrics=MetricsRegistry(), trace=tracer, profile=Profiler())

    @classmethod
    def from_env(cls) -> "Observability":
        """Build from ``REPRO_OBS``/``REPRO_TRACE*`` (NULL_OBS when unset)."""
        trace_path = os.environ.get("REPRO_TRACE")
        obs_on = os.environ.get("REPRO_OBS", "").lower() in ("1", "true", "yes", "on")
        if not obs_on and not trace_path:
            return NULL_OBS
        return cls.create(
            trace_sink=trace_path,
            sample_rate=float(os.environ.get("REPRO_TRACE_SAMPLE", "1.0")),
            seed=int(os.environ.get("REPRO_TRACE_SEED", "0")),
        )

    def snapshot(self) -> dict[str, Any]:
        """Combined metrics + profile snapshot for embedding in results."""
        if not self.metrics.enabled:
            return {}
        self.profile.publish(self.metrics)
        return self.metrics.snapshot()

    def close(self) -> None:
        self.trace.close()


#: The do-nothing default every component starts with.
NULL_OBS = Observability()

_current: Optional[Observability] = None


def get_obs() -> Observability:
    """The process-wide bundle (lazily initialised from the environment)."""
    global _current
    if _current is None:
        _current = Observability.from_env()
    return _current


def set_obs(obs: Optional[Observability]) -> None:
    """Install (or with None, reset to env-derived) the process-wide bundle."""
    global _current
    _current = obs
