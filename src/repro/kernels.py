"""Batch codec kernels: the vectorised COP pipeline, plus a memo cache.

The scalar :class:`~repro.core.codec.COPCodec` is the *reference
implementation* — readable, word-at-a-time, and the ground truth every
result is defined against.  It is also the runtime bound of every figure
sweep (``bench_kernels.py`` documents this): classifying millions of
blocks through pure-Python syndrome loops dominates wall-clock.  This
module provides two accelerations that are **bit-for-bit identical** to
the scalar codec (enforced by the parity suite in ``tests/test_kernels.py``
and the ``make kernels-smoke`` byte-diff):

:class:`BatchCodec`
    Vectorises the full pipeline over ``(N, 64)`` uint8 block arrays:
    hash-mask removal as a broadcast XOR, syndrome evaluation through the
    per-byte numpy LUTs of :class:`~repro.ecc.hsiao.HsiaoCode`, batch
    single-bit correction via the syndrome -> bit-position table, and
    payload reassembly only for the blocks actually classified
    compressed.  Compression/decompression itself stays scalar (the
    schemes are bit-serial by nature); everything around it is numpy.

:class:`MemoizedCodec`
    A content-keyed memo cache in front of a scalar codec.  The codec is
    a pure function of block content, and synthetic traces repeat block
    contents heavily, so memoisation is both safe and effective.  Hit /
    miss / eviction counters land in a :mod:`repro.obs` metrics registry
    under ``kernels.memo.*``.

Layout conventions match the rest of the library: a block row is the 64
stored bytes, and code words within it are little-endian byte slices
(bit ``i`` of the word integer is bit ``i % 8`` of row byte
``word * word_bytes + i // 8``) — exactly what ``bytes_to_int`` produces
on the scalar path and what ``HsiaoCode.syndrome_many`` consumes.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro._bits import Bits, int_to_bytes
from repro.analysis import sanitizer
from repro.compression.base import BLOCK_BYTES, SCHEME_TAG_BITS
from repro.compression.combined import CombinedCompressor
from repro.compression.msb import MSBCompressor
from repro.compression.rle import RLECompressor
from repro.compression.txt import TextCompressor
from repro.core.codec import BlockKind, COPCodec, DecodedBlock, EncodedBlock
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY

__all__ = [
    "BatchCodec",
    "MemoizedCodec",
    "blocks_to_array",
    "array_to_blocks",
    "unique_block_counts",
    "dedup_fraction",
    "dedup_map",
]


def blocks_to_array(blocks: Sequence[bytes]) -> np.ndarray:
    """Pack 64-byte blocks into an ``(N, 64)`` uint8 array."""
    if not blocks:
        return np.zeros((0, BLOCK_BYTES), dtype=np.uint8)
    joined = b"".join(blocks)
    if len(joined) != BLOCK_BYTES * len(blocks):
        raise ValueError("every block must be exactly 64 bytes")
    return np.frombuffer(joined, dtype=np.uint8).reshape(-1, BLOCK_BYTES)


def array_to_blocks(array: np.ndarray) -> List[bytes]:
    """Unpack an ``(N, 64)`` uint8 array into a list of 64-byte blocks."""
    _check_array(array)
    flat = array.tobytes()
    return [
        flat[i : i + BLOCK_BYTES] for i in range(0, len(flat), BLOCK_BYTES)
    ]


def _check_array(blocks: np.ndarray) -> np.ndarray:
    if blocks.ndim != 2 or blocks.shape[1] != BLOCK_BYTES:
        raise ValueError(
            f"expected shape (N, {BLOCK_BYTES}), got {blocks.shape}"
        )
    if blocks.dtype != np.uint8:
        raise ValueError(f"expected uint8 blocks, got {blocks.dtype}")
    return blocks


# -- vector compressibility predicates ---------------------------------------
#
# Array translations of the scalar scheme ``compress(...) is not None``
# decisions (the only part of the encoder the batch replay path consults).
# Each mirrors its scalar counterpart exactly, including the budget guards,
# so ``compressible_many`` stays bit-identical to first-fit probing.


def _txt_compressible(blocks: np.ndarray, inner_budget: int) -> np.ndarray:
    """TXT: every byte has a clear MSB (and 448 payload bits must fit)."""
    if TextCompressor.compressed_bits > inner_budget:
        return np.zeros(blocks.shape[0], dtype=bool)
    return ~(blocks & 0x80).any(axis=1)


def _msb_compressible(
    blocks: np.ndarray, scheme: MSBCompressor, inner_budget: int
) -> np.ndarray:
    """MSB: the compared field matches across all eight 8-byte words."""
    if scheme.compressed_bits > inner_budget:
        return np.zeros(blocks.shape[0], dtype=bool)
    # Stored words are little-endian byte slices, matching bytes_to_int.
    words = blocks.reshape(-1, 8, 8).view("<u8")[:, :, 0]
    field_mask = np.uint64((1 << scheme.compare_bits) - 1)
    shift = np.uint64(scheme.field_start)
    fields = (words >> shift) & field_mask
    return (fields == fields[:, :1]).all(axis=1)


def _rle_compressible(
    blocks: np.ndarray, scheme: RLECompressor, inner_budget: int
) -> np.ndarray:
    """RLE: greedy run scan frees the threshold within the payload budget.

    Replays ``find_runs`` for every row at once.  The scalar cursor only
    ever sits on even offsets (non-runs advance by 2, runs by
    ``length + length % 2``), and a 3-byte run skips exactly the next even
    offset — so one pass over the 32 even offsets with a carry flag per
    row reproduces the greedy scan.
    """
    min_free = scheme.min_free_bits
    count = blocks.shape[0]
    freed = np.zeros(count, dtype=np.int64)
    skip = np.zeros(count, dtype=bool)  # 3-byte run covered this offset
    for offset in range(0, BLOCK_BYTES - 1, 2):
        active = ~skip & (freed < min_free)
        skip = np.zeros(count, dtype=bool)
        b0 = blocks[:, offset]
        is_run = active & (b0 == blocks[:, offset + 1]) & ((b0 == 0) | (b0 == 0xFF))
        if offset + 2 < BLOCK_BYTES:
            length3 = is_run & (blocks[:, offset + 2] == b0)
            skip = length3
        else:
            length3 = np.zeros(count, dtype=bool)
        freed += np.where(is_run, np.where(length3, 17, 9), 0)
    # compress() additionally guards the assembled payload (512 - freed
    # bits) against the budget; replicate so mismatched parameters agree.
    return (freed >= min_free) & ((512 - freed) <= inner_budget)


class BatchCodec:
    """Vectorised encode/decode/classify over ``(N, 64)`` block arrays.

    Wraps (and defers compression to) a scalar :class:`COPCodec`; every
    batch method is bit-for-bit equivalent to mapping the corresponding
    scalar method over the rows.
    """

    def __init__(self, codec: Optional[COPCodec] = None) -> None:
        self.codec = codec or COPCodec()
        config = self.codec.config
        self.config = config
        self._word_bytes = config.codeword_bits // 8
        self._data_bytes = config.codeword_data_bits // 8
        self._num_words = config.num_codewords
        self._threshold = config.codeword_threshold
        #: The 64 mask bytes in stored-block order (broadcast XOR row).
        self._mask_row = np.frombuffer(
            b"".join(
                int_to_bytes(mask, self._word_bytes)
                for mask in self.codec.masks
            ),
            dtype=np.uint8,
        ).copy()

    # -- classification -----------------------------------------------------

    def _words_of(self, stored: np.ndarray) -> np.ndarray:
        """Hash-removed code words: ``(N, num_words, word_bytes)`` uint8."""
        _check_array(stored)
        return (stored ^ self._mask_row).reshape(
            stored.shape[0], self._num_words, self._word_bytes
        )

    def codeword_count_many(self, stored: np.ndarray) -> np.ndarray:
        """Valid code words per row — vector form of ``codeword_count``.

        Returns an ``(N,)`` int64 array.
        """
        words = self._words_of(stored)
        counts = np.zeros(stored.shape[0], dtype=np.int64)
        for index in range(self._num_words):
            counts += self.codec.code.valid_many(words[:, index, :])
        return counts

    def is_alias_many(self, blocks: np.ndarray) -> np.ndarray:
        """Alias mask per row — vector form of ``is_alias``."""
        return self.codeword_count_many(blocks) >= self._threshold

    def compressible_many(self, blocks: np.ndarray) -> np.ndarray:
        """Per-row compressibility: would ``encode`` store each row compressed?

        Vector form of ``compressor.compress(row, capacity_bits) is not
        None`` — the only encode outcome the batch replay engine needs
        (the stored payload bits never reach an observable output on the
        fault-free path).  The COP hybrids (TXT/MSB/RLE under a
        :class:`CombinedCompressor`) are evaluated with array predicates;
        any other compressor falls back to the scalar probe per row.
        """
        _check_array(blocks)
        compressor = self.codec.compressor
        budget = self.config.capacity_bits
        if isinstance(compressor, CombinedCompressor) and all(
            isinstance(s, (TextCompressor, MSBCompressor, RLECompressor))
            for s in compressor.schemes
        ):
            inner_budget = budget - SCHEME_TAG_BITS
            mask = np.zeros(blocks.shape[0], dtype=bool)
            for scheme in compressor.schemes:
                if isinstance(scheme, TextCompressor):
                    mask |= _txt_compressible(blocks, inner_budget)
                elif isinstance(scheme, MSBCompressor):
                    mask |= _msb_compressible(blocks, scheme, inner_budget)
                else:
                    mask |= _rle_compressible(blocks, scheme, inner_budget)
            return mask
        return np.array(
            [
                compressor.compress(row.tobytes(), budget) is not None
                for row in blocks
            ],
            dtype=bool,
        )

    # -- encoder ------------------------------------------------------------

    def encode_many(self, blocks: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vector form of ``encode``: compress + protect each row.

        Returns ``(stored, compressed)``: the ``(N, 64)`` uint8 stored
        images and an ``(N,)`` bool mask of rows stored compressed.  The
        per-scheme compression search stays scalar; SECDED encoding,
        hash-mask application and packing are vectorised across the
        compressible rows.
        """
        _check_array(blocks)
        capacity_bits = self.config.capacity_bits
        payload_bytes = self._num_words * self._data_bytes
        payloads: List[Optional[Bits]] = [
            self.codec.compressor.compress(row.tobytes(), capacity_bits)
            for row in blocks
        ]
        compressed = np.array(
            [payload is not None for payload in payloads], dtype=bool
        )
        stored = blocks.copy()
        rows = np.nonzero(compressed)[0]
        if rows.size:
            data = np.frombuffer(
                b"".join(
                    int_to_bytes(payloads[i].value, payload_bytes)  # type: ignore[union-attr]
                    for i in rows
                ),
                dtype=np.uint8,
            ).reshape(rows.size * self._num_words, self._data_bytes)
            words = self.codec.code.encode_many(data).reshape(
                rows.size, BLOCK_BYTES
            )
            stored[rows] = words ^ self._mask_row
        return stored, compressed

    # -- decoder ------------------------------------------------------------

    def decode_many(self, stored: np.ndarray) -> List[DecodedBlock]:
        """Vector form of ``decode``: classify, correct, decompress rows.

        Syndromes, validity counting and single-bit correction run over
        the whole batch; payload reassembly and decompression run only
        for the rows classified compressed (few, when scanning raw data;
        content-repetitive, when reading traces — see
        :class:`MemoizedCodec`).
        """
        words = self._words_of(stored).copy()
        count = stored.shape[0]
        flat = words.reshape(count * self._num_words, self._word_bytes)
        corrected_flat, clean, detected = self.codec.code.correct_many(flat)
        valid = clean.reshape(count, self._num_words).sum(axis=1)
        corrected_words = (
            (~clean & ~detected)
            .reshape(count, self._num_words)
            .sum(axis=1)
        )
        detected_any = detected.reshape(count, self._num_words).any(axis=1)
        compressed_rows = valid >= self._threshold
        data_bytes = corrected_flat.reshape(
            count, self._num_words, self._word_bytes
        )[:, :, : self._data_bytes]

        results: List[DecodedBlock] = []
        for i in range(count):
            valid_count = int(valid[i])
            if not compressed_rows[i]:
                results.append(
                    DecodedBlock(BlockKind.RAW, stored[i].tobytes(), valid_count)
                )
                continue
            payload = Bits(
                int.from_bytes(data_bytes[i].tobytes(), "little"),
                self.config.capacity_bits,
            )
            corrected = int(corrected_words[i])
            try:
                data = self.codec.compressor.decompress(payload)
            except ValueError:
                # Mirrors the scalar codec: an uncorrectable word
                # scrambled the payload structure itself.
                results.append(
                    DecodedBlock(
                        BlockKind.COMPRESSED,
                        bytes(BLOCK_BYTES),
                        valid_count,
                        corrected,
                        True,
                    )
                )
                continue
            results.append(
                DecodedBlock(
                    BlockKind.COMPRESSED,
                    data,
                    valid_count,
                    corrected,
                    bool(detected_any[i]),
                )
            )
        return results


class MemoizedCodec:
    """Content-keyed memo cache in front of a scalar :class:`COPCodec`.

    Every codec operation is a pure function of block content, so results
    can be reused whenever the same 64 bytes come around again — which in
    the synthetic traces is constantly (a few thousand distinct contents
    serve millions of accesses).  The cache is bounded: at
    ``max_entries`` per operation the oldest insertion is evicted (FIFO),
    keeping memory use and behaviour deterministic.

    Exposes the same surface the controller and COP-ER formatter use
    (``encode``/``decode``/``codeword_count``/``is_alias`` plus the
    ``config``/``compressor``/``code``/``masks`` attributes), so it drops
    in wherever a ``COPCodec`` is expected.

    Thread safety
    -------------
    Every cache operation — lookup, compute, size-check, FIFO eviction,
    insertion, and the hit/miss/eviction counter updates — runs under one
    internal lock, so a ``MemoizedCodec`` may be shared between threads
    (the service daemon's shards each own one, and its stress suite
    hammers a shared instance; see docs/kernels.md).  The compute of a
    missing entry happens *inside* the lock: concurrent callers can never
    compute the same content twice, which keeps the miss counter equal to
    the number of distinct contents ever inserted — the same count a
    serial caller would observe.  The lock is dropped from the pickled
    state (and recreated on unpickle) so codecs still ride into fork-pool
    workers.

    The ``has_*``/``seed_*`` methods are the batch-warming surface the
    service shards use: ``seed_encode(block, encoded)`` inserts an entry
    computed elsewhere (by :class:`BatchCodec`, over a whole batch) and
    counts it as a miss — it *is* a computed entry, exactly what a serial
    scalar first encounter would have produced — after which the
    in-place operation hits.  Seeding a present key is a no-op, so
    counters stay consistent however callers interleave.
    """

    def __init__(
        self,
        codec: Optional[COPCodec] = None,
        max_entries: int = 1 << 16,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.codec = codec or COPCodec()
        self.config = self.codec.config
        self.compressor = self.codec.compressor
        self.code = self.codec.code
        self.masks = self.codec.masks
        self.max_entries = max_entries
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._encode_cache: Dict[bytes, EncodedBlock] = {}  # guarded-by: _lock
        self._decode_cache: Dict[bytes, DecodedBlock] = {}  # guarded-by: _lock
        self._count_cache: Dict[bytes, int] = {}  # guarded-by: _lock
        self._m_hits = registry.counter("kernels.memo.hits")  # guarded-by: _lock
        self._m_misses = registry.counter("kernels.memo.misses")  # guarded-by: _lock
        self._m_evictions = registry.counter("kernels.memo.evictions")
        # One lock covers every cache and the counters: the size-check /
        # evict / insert sequence (and the counter increments) must be
        # atomic for the hit+miss bookkeeping to survive threaded shards.
        # Minted through the sanitizer so REPRO_SANITIZE=locks runs audit
        # acquisition order and guarded access at runtime (REP007's twin).
        self._lock = sanitizer.new_lock("kernels.memo")

    def __getstate__(self) -> Dict[str, Any]:
        # Locks don't pickle; codecs ride into fork-pool workers inside
        # job closures (docs/parallel-runs.md), so drop the lock and let
        # __setstate__ mint a fresh one.
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = sanitizer.new_lock("kernels.memo")

    def _evict_if_full(self, cache: Dict[bytes, object]) -> None:
        """Make room for one insertion.  Caller must hold ``self._lock``."""
        sanitizer.assert_held(self._lock, "MemoizedCodec caches")
        if len(cache) >= self.max_entries:
            # FIFO eviction: dicts iterate in insertion order.
            del cache[next(iter(cache))]
            # Lexically unguarded, but the assert above enforces the
            # lock at runtime under REPRO_SANITIZE=locks.
            self._m_evictions.inc()  # repro: noqa[REP007]

    def _memo(
        self,
        cache: Dict[bytes, object],
        block: bytes,
        compute: Callable[[bytes], object],
    ) -> object:
        key = bytes(block)
        with self._lock:
            hit = cache.get(key)
            if hit is not None:
                self._m_hits.inc()
                return hit
            self._m_misses.inc()
            # Compute *inside* the lock: a distinct content is computed at
            # most once however many threads race on it, so the miss
            # counter equals the number of entries ever inserted.  The
            # work is bounded by one scalar codec pass, which is the
            # service's per-request cost anyway (docs/kernels.md).
            value = compute(key)  # sanctioned[blocking-under-lock]: miss dedup invariant
            self._evict_if_full(cache)
            cache[key] = value
            return value

    def _seed(self, cache: Dict[bytes, object], block: bytes, value: object) -> None:
        key = bytes(block)
        with self._lock:
            if key in cache:
                return
            self._m_misses.inc()
            self._evict_if_full(cache)
            cache[key] = value

    def _has(self, cache: Dict[bytes, object], block: bytes) -> bool:
        with self._lock:
            return bytes(block) in cache

    def _peek(self, cache: Dict[bytes, object], block: bytes) -> object:
        with self._lock:
            return cache.get(bytes(block))

    def encode(self, block: bytes) -> EncodedBlock:
        return self._memo(self._encode_cache, block, self.codec.encode)  # type: ignore[arg-type,return-value]

    def decode(self, stored: bytes) -> DecodedBlock:
        return self._memo(self._decode_cache, stored, self.codec.decode)  # type: ignore[arg-type,return-value]

    def codeword_count(self, stored: bytes) -> int:
        return self._memo(  # type: ignore[return-value]
            self._count_cache, stored, self.codec.codeword_count  # type: ignore[arg-type]
        )

    def is_alias(self, block: bytes) -> bool:
        """Alias check through the shared codeword-count cache."""
        return self.codeword_count(block) >= self.config.codeword_threshold

    # -- batch-warming surface (service shards; see docs/kernels.md) --------

    def has_encode(self, block: bytes) -> bool:
        """Is this content's encode result already cached (no counters)?"""
        return self._has(self._encode_cache, block)  # type: ignore[arg-type]

    def has_decode(self, stored: bytes) -> bool:
        """Is this stored image's decode result already cached?"""
        return self._has(self._decode_cache, stored)  # type: ignore[arg-type]

    def has_count(self, stored: bytes) -> bool:
        """Is this content's codeword count already cached?"""
        return self._has(self._count_cache, stored)  # type: ignore[arg-type]

    def peek_encode(self, block: bytes) -> Optional[EncodedBlock]:
        """Cached encode result, or ``None`` — never touches the counters.

        The batch-prewarm path uses peeks to decide what to seed and to
        simulate controller state within a batch; a peek must not count
        as a hit or the hit totals would depend on batch boundaries.
        """
        return self._peek(self._encode_cache, block)  # type: ignore[arg-type,return-value]

    def peek_decode(self, stored: bytes) -> Optional[DecodedBlock]:
        """Cached decode result, or ``None`` (counter-free)."""
        return self._peek(self._decode_cache, stored)  # type: ignore[arg-type,return-value]

    def peek_count(self, stored: bytes) -> Optional[int]:
        """Cached codeword count, or ``None`` (counter-free)."""
        return self._peek(self._count_cache, stored)  # type: ignore[arg-type,return-value]

    def seed_encode(self, block: bytes, encoded: EncodedBlock) -> None:
        """Insert a batch-computed encode result (counts one miss)."""
        self._seed(self._encode_cache, block, encoded)  # type: ignore[arg-type]

    def seed_decode(self, stored: bytes, decoded: DecodedBlock) -> None:
        """Insert a batch-computed decode result (counts one miss)."""
        self._seed(self._decode_cache, stored, decoded)  # type: ignore[arg-type]

    def seed_count(self, stored: bytes, count: int) -> None:
        """Insert a batch-computed codeword count (counts one miss)."""
        self._seed(self._count_cache, stored, count)  # type: ignore[arg-type]

    @property
    def cache_sizes(self) -> Dict[str, int]:
        """Live entry counts per memoised operation (for reporting)."""
        with self._lock:
            return {
                "encode": len(self._encode_cache),
                "decode": len(self._decode_cache),
                "codeword_count": len(self._count_cache),
            }


# -- dedup helpers for the compressibility experiments -----------------------
#
# Figures 1/4/8/9 are bound by scalar per-scheme compression probes over
# heavily repeating trace contents.  Their batch path is exact
# deduplication: evaluate each distinct content once, weight by its
# multiplicity.  Sums of booleans over integers are exact, so fractions
# come out bit-identical to the scalar loops.


def unique_block_counts(
    blocks: Iterable[bytes],
) -> Tuple[List[bytes], List[int], int]:
    """Distinct block contents with multiplicities (insertion order).

    Returns ``(contents, multiplicities, total)``.
    """
    tally: Dict[bytes, int] = {}
    total = 0
    for block in blocks:
        tally[block] = tally.get(block, 0) + 1
        total += 1
    return list(tally.keys()), list(tally.values()), total


def dedup_fraction(
    blocks: Sequence[bytes],
    predicate: Callable[[bytes], bool],
    metrics: Optional[MetricsRegistry] = None,
) -> float:
    """``sum(predicate(b) for b in blocks) / len(blocks)``, deduplicated.

    Evaluates ``predicate`` once per distinct content and weights by
    multiplicity — exactly equal to the scalar loop because the weighted
    sum is over integers.
    """
    contents, multiplicities, total = unique_block_counts(blocks)
    if not total:
        return 0.0
    registry = metrics if metrics is not None else NULL_REGISTRY
    registry.counter("kernels.dedup.blocks").inc(total)
    registry.counter("kernels.dedup.unique").inc(len(contents))
    matched = sum(
        mult
        for content, mult in zip(contents, multiplicities)
        if predicate(content)
    )
    return matched / total


def dedup_map(
    blocks: Sequence[bytes],
    compute: Callable[[bytes], int],
    metrics: Optional[MetricsRegistry] = None,
) -> List[int]:
    """Map ``compute`` over blocks, evaluating each distinct content once.

    Returns one value per input block, in input order — the deduplicated
    equivalent of ``[compute(b) for b in blocks]``.
    """
    registry = metrics if metrics is not None else NULL_REGISTRY
    cache: Dict[bytes, int] = {}
    out: List[int] = []
    for block in blocks:
        value = cache.get(block)
        if value is None:
            value = cache[block] = compute(block)
        out.append(value)
    registry.counter("kernels.dedup.blocks").inc(len(out))
    registry.counter("kernels.dedup.unique").inc(len(cache))
    return out
