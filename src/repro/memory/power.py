"""DRAM power/energy model.

The paper's economic motivation: an ECC DIMM adds a ninth chip per rank —
"incurring a 12.5% hardware overhead ... in addition to substantially
increasing power consumption relative to non-ECC DIMMs".  This model
quantifies that claim for the simulated runs, using a Micron-style
decomposition into per-chip background power, activate/precharge energy,
read/write burst energy and refresh power.  Absolute values are
DDR3-1600-class approximations; the conclusions (the 9/8 device ratio,
the extra-access energy of in-memory ECC baselines) depend only on
ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.dram import DRAMStats

__all__ = ["DRAMPowerParams", "PowerReport", "PowerModel"]


@dataclass(frozen=True)
class DRAMPowerParams:
    """Per-chip energy coefficients (DDR3-1600 x8 class)."""

    background_mw_per_chip: float = 45.0  # IDD3N-class standby, per chip
    refresh_mw_per_chip: float = 4.5  # averaged refresh power
    act_pre_energy_nj_per_chip: float = 1.7  # one ACT+PRE pair
    read_energy_pj_per_bit: float = 14.0  # array + I/O read energy
    write_energy_pj_per_bit: float = 16.0


@dataclass(frozen=True)
class PowerReport:
    """Energy breakdown for one simulated interval."""

    background_mj: float
    refresh_mj: float
    activate_mj: float
    read_mj: float
    write_mj: float
    elapsed_ns: float
    chips: int

    @property
    def total_mj(self) -> float:
        return (
            self.background_mj
            + self.refresh_mj
            + self.activate_mj
            + self.read_mj
            + self.write_mj
        )

    @property
    def average_w(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.total_mj * 1e-3 / (self.elapsed_ns * 1e-9)


class PowerModel:
    """Computes DIMM energy from DRAM activity statistics.

    ``ecc_chips`` adds the ninth chip per rank: it burns background and
    refresh power continuously and participates in every activate and
    burst (the check byte transfers alongside the data).
    """

    def __init__(
        self,
        params: DRAMPowerParams | None = None,
        data_chips_per_rank: int = 8,
        ecc_chips_per_rank: int = 0,
        total_ranks: int = 4,  # Table 1: 2 channels x 2 ranks
        block_bytes: int = 64,
    ) -> None:
        if data_chips_per_rank < 1 or ecc_chips_per_rank < 0:
            raise ValueError("invalid chip counts")
        self.params = params or DRAMPowerParams()
        self.data_chips = data_chips_per_rank
        self.ecc_chips = ecc_chips_per_rank
        self.total_ranks = total_ranks
        self.block_bytes = block_bytes

    @property
    def chips_per_rank(self) -> int:
        return self.data_chips + self.ecc_chips

    @property
    def total_chips(self) -> int:
        return self.chips_per_rank * self.total_ranks

    @property
    def device_overhead(self) -> float:
        """Hardware overhead vs a non-ECC DIMM (0.125 for 9 chips)."""
        return self.ecc_chips / self.data_chips

    def _burst_bits(self) -> float:
        """Bits moved per 64-byte access, including any check bits."""
        return 8 * self.block_bytes * (self.chips_per_rank / self.data_chips)

    def report(self, stats: DRAMStats, elapsed_ns: float) -> PowerReport:
        """Energy for a run summarised by ``stats`` over ``elapsed_ns``."""
        if elapsed_ns < 0:
            raise ValueError("elapsed time must be non-negative")
        params = self.params
        seconds = elapsed_ns * 1e-9
        background_mj = params.background_mw_per_chip * self.total_chips * seconds
        refresh_mj = params.refresh_mw_per_chip * self.total_chips * seconds
        activates = stats.row_misses
        activate_mj = (
            activates
            * params.act_pre_energy_nj_per_chip
            * self.chips_per_rank
            * 1e-6
        )
        bits = self._burst_bits()
        read_mj = stats.reads * bits * params.read_energy_pj_per_bit * 1e-9
        write_mj = stats.writes * bits * params.write_energy_pj_per_bit * 1e-9
        return PowerReport(
            background_mj=background_mj,
            refresh_mj=refresh_mj,
            activate_mj=activate_mj,
            read_mj=read_mj,
            write_mj=write_mj,
            elapsed_ns=elapsed_ns,
            chips=self.total_chips,
        )
