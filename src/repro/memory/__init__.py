"""DRAM substrate: a DDR3-1600-class main-memory timing model.

The paper backs its interval simulator with DRAMSim2; this package plays
that role at the fidelity the evaluation needs — per-bank row-buffer state,
bank timing constraints (tRCD / tRP / CL / tRAS / burst), per-channel data
bus serialisation, and the Table 1 organisation (2 channels, 1 DIMM per
channel, 2 ranks per DIMM, 8 banks per rank, 8 GB total).
"""

from repro.memory.address import AddressMapper, DRAMGeometry, MappedAddress
from repro.memory.power import DRAMPowerParams, PowerModel, PowerReport
from repro.memory.scheduler import MemoryScheduler, MemRequest, SchedulingPolicy
from repro.memory.dram import (
    DDR3_1600,
    PagePolicy,
    AccessTiming,
    DRAMConfig,
    DRAMStats,
    DRAMSystem,
    DRAMTiming,
)

__all__ = [
    "DRAMGeometry",
    "AddressMapper",
    "MappedAddress",
    "DRAMTiming",
    "DRAMConfig",
    "DDR3_1600",
    "PagePolicy",
    "DRAMSystem",
    "DRAMStats",
    "AccessTiming",
    "DRAMPowerParams",
    "PowerModel",
    "PowerReport",
    "MemoryScheduler",
    "MemRequest",
    "SchedulingPolicy",
]
