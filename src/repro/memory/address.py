"""Physical address mapping onto channels, ranks, banks, rows and columns.

The mapper decomposes a block-aligned byte address into DRAM coordinates.
The default field order (most to least significant)
``row : rank : bank : col : channel`` gives consecutive blocks alternating
channels (bandwidth) while keeping runs of blocks within one row per
channel (row-buffer locality) — the usual open-page-friendly layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

__all__ = ["DRAMGeometry", "MappedAddress", "AddressMapper"]


@dataclass(frozen=True)
class DRAMGeometry:
    """Organisation of the memory system (Table 1 defaults)."""

    channels: int = 2
    ranks_per_channel: int = 2  # 1 DIMM/channel x 2 ranks/DIMM
    banks_per_rank: int = 8
    row_bytes: int = 8192  # 1 KB per x8 chip x 8 chips
    block_bytes: int = 64
    capacity_bytes: int = 8 << 30

    def __post_init__(self) -> None:
        for name in ("channels", "ranks_per_channel", "banks_per_rank"):
            value = getattr(self, name)
            if value < 1 or value & (value - 1):
                raise ValueError(f"{name} must be a positive power of two")
        if self.row_bytes % self.block_bytes:
            raise ValueError("rows must hold whole blocks")

    @property
    def blocks_per_row(self) -> int:
        return self.row_bytes // self.block_bytes

    @property
    def num_rows(self) -> int:
        per_bank = self.capacity_bytes // (
            self.channels * self.ranks_per_channel * self.banks_per_rank
        )
        return per_bank // self.row_bytes

    @property
    def total_blocks(self) -> int:
        return self.capacity_bytes // self.block_bytes


class MappedAddress(NamedTuple):
    channel: int
    rank: int
    bank: int
    row: int
    col: int  # block index within the row


class AddressMapper:
    """Bit-field address decomposition with a configurable field order."""

    #: Field order from most significant to least significant.
    DEFAULT_ORDER = ("row", "rank", "bank", "col", "channel")

    def __init__(
        self,
        geometry: DRAMGeometry | None = None,
        order: tuple[str, ...] = DEFAULT_ORDER,
    ) -> None:
        self.geometry = geometry or DRAMGeometry()
        sizes = {
            "channel": self.geometry.channels,
            "rank": self.geometry.ranks_per_channel,
            "bank": self.geometry.banks_per_rank,
            "col": self.geometry.blocks_per_row,
            "row": self.geometry.num_rows,
        }
        if sorted(order) != sorted(sizes):
            raise ValueError(f"order must name each field once, got {order}")
        self.order = order
        self._sizes = sizes
        #: ``(name, size)`` pairs least significant first — the exact
        #: iteration order of :meth:`map`, precomputed for hot loops.
        self.field_spec = tuple(
            (name, sizes[name]) for name in reversed(order)
        )

    def map(self, addr: int) -> MappedAddress:
        """Decompose a byte address (block aligned or not)."""
        block = (addr // self.geometry.block_bytes) % self.geometry.total_blocks
        fields = {}
        for name in reversed(self.order):  # least significant first
            size = self._sizes[name]
            fields[name] = block % size
            block //= size
        return MappedAddress(**fields)

    def map_arrays(self, addrs: np.ndarray) -> dict[str, np.ndarray]:
        """Vectorised :meth:`map`: decompose many addresses at once.

        ``addrs`` is an integer array of byte addresses; the result maps
        each field name to an int64 array, elementwise identical to
        ``map(addr)`` (all field sizes are exact integers, so the numpy
        floor divisions reproduce the scalar arithmetic bit for bit).
        """
        block = (
            addrs.astype(np.int64) // self.geometry.block_bytes
        ) % self.geometry.total_blocks
        fields: dict[str, np.ndarray] = {}
        for name in reversed(self.order):  # least significant first
            size = self._sizes[name]
            fields[name] = block % size
            block = block // size
        return fields

    def map_lists(self, addrs: list[int]) -> dict[str, list[int]]:
        """Pure-Python :meth:`map_arrays`: same fields as plain lists.

        Identical integer arithmetic to :meth:`map`; preferable to the
        numpy path for short address lists (an MSHR wave), where array
        setup costs more than the loop.
        """
        block_bytes = self.geometry.block_bytes
        total = self.geometry.total_blocks
        order = tuple(reversed(self.order))  # least significant first
        sizes = tuple(self._sizes[name] for name in order)
        fields: dict[str, list[int]] = {name: [] for name in order}
        appends = tuple(fields[name].append for name in order)
        for addr in addrs:
            block = (addr // block_bytes) % total
            for size, append in zip(sizes, appends):
                append(block % size)
                block //= size
        return fields

    def compose(self, mapped: MappedAddress) -> int:
        """Inverse of :meth:`map`; returns the block-aligned byte address."""
        block = 0
        for name in self.order:  # most significant first
            block = block * self._sizes[name] + getattr(mapped, name)
        return block * self.geometry.block_bytes
