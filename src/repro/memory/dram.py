"""Bank-level DDR3 timing model with an open-row policy.

The model tracks, per bank, the open row, the earliest time the bank can
accept a new column/row command, and the last activate time (to honour
tRAS before a precharge).  Each channel serialises data bursts on its bus.
Requests are processed in arrival order; :meth:`DRAMSystem.access_batch`
applies FR-FCFS-style reordering inside a batch of simultaneously ready
requests (row hits first), which is where scheduling matters for the
interval performance model.

All times are nanoseconds.  Defaults model DDR3-1600 (tCK = 1.25 ns,
11-11-11-28, BL8) per Table 1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import NamedTuple, Optional, Sequence

import numpy as np

from repro.memory.address import AddressMapper, DRAMGeometry, MappedAddress

__all__ = [
    "DRAMTiming",
    "PagePolicy",
    "DRAMConfig",
    "DDR3_1600",
    "AccessTiming",
    "DRAMStats",
    "DRAMSystem",
]


@dataclass(frozen=True)
class DRAMTiming:
    """Core timing parameters, in memory-clock cycles unless noted."""

    tck_ns: float = 1.25  # DDR3-1600: 800 MHz clock, 1600 MT/s
    cl: int = 11  # CAS latency
    trcd: int = 11  # activate -> column command
    trp: int = 11  # precharge
    tras: int = 28  # activate -> precharge
    burst_cycles: int = 4  # BL8 at double data rate
    tfaw: int = 24  # four-activate window per rank (0 disables)
    trefi_ns: float = 7800.0  # refresh interval (0 disables refresh)
    trfc_ns: float = 260.0  # refresh cycle time (4 Gb-class devices)

    def __post_init__(self) -> None:
        # The refresh window is the last tRFC of each tREFI interval.  A
        # device that spends its whole interval (or more) refreshing can
        # never accept a command: ``_after_refresh`` would "push" a start
        # time into a window that covers all time, silently returning a
        # time still inside a refresh.  Reject the impossible geometry at
        # construction instead of producing nonsense timings.
        if self.trfc_ns < 0:
            raise ValueError(f"trfc_ns must be non-negative: {self.trfc_ns}")
        if self.trefi_ns > 0 and self.trfc_ns >= self.trefi_ns:
            raise ValueError(
                f"refresh window tRFC ({self.trfc_ns} ns) must be shorter "
                f"than the refresh interval tREFI ({self.trefi_ns} ns); "
                "set trefi_ns=0 to disable refresh entirely"
            )

    def ns(self, cycles: float) -> float:
        return cycles * self.tck_ns

    @property
    def row_hit_ns(self) -> float:
        """Column access + burst on an already-open row."""
        return self.ns(self.cl + self.burst_cycles)

    @property
    def row_miss_ns(self) -> float:
        """Precharge + activate + column access + burst."""
        return self.ns(self.trp + self.trcd + self.cl + self.burst_cycles)


class PagePolicy(enum.Enum):
    """Row-buffer management policy.

    The paper assumes an open-row policy (its embedded-ECC discussion
    depends on it); the closed-page alternative precharges after every
    access, trading row hits for lower conflict latency — exposed for the
    policy ablation bench.
    """

    OPEN = "open"
    CLOSED = "closed"


@dataclass(frozen=True)
class DRAMConfig:
    geometry: DRAMGeometry = field(default_factory=DRAMGeometry)
    timing: DRAMTiming = field(default_factory=DRAMTiming)
    page_policy: PagePolicy = PagePolicy.OPEN


#: The Table 1 configuration.
DDR3_1600 = DRAMConfig()


class AccessTiming(NamedTuple):
    """When one request started and finished, and how it hit."""

    start_ns: float
    complete_ns: float
    row_hit: bool

    @property
    def latency_ns(self) -> float:
        return self.complete_ns - self.start_ns


@dataclass
class DRAMStats:
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    busy_ns: float = 0.0
    #: Per-bank ``(channel, rank, bank) -> [row_hits, row_misses]``,
    #: populated only when the owning DRAMSystem has observability on.
    per_bank: dict[tuple[int, int, int], list[int]] = field(default_factory=dict)

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        """Scalar counters keyed by name (per-bank detail excluded)."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "accesses": self.accesses,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "busy_ns": self.busy_ns,
        }

    def merge(self, other: "DRAMStats") -> "DRAMStats":
        """Accumulate another instance's counts into this one."""
        self.reads += other.reads
        self.writes += other.writes
        self.row_hits += other.row_hits
        self.row_misses += other.row_misses
        self.busy_ns += other.busy_ns
        for key, (hits, misses) in other.per_bank.items():
            entry = self.per_bank.setdefault(key, [0, 0])
            entry[0] += hits
            entry[1] += misses
        return self


class _Bank:
    __slots__ = ("open_row", "ready_ns", "act_ns")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.ready_ns = 0.0
        self.act_ns = 0.0


class DRAMSystem:
    """Functional-timing model of the whole memory system."""

    def __init__(self, config: DRAMConfig = DDR3_1600, obs=None) -> None:
        from repro.obs import NULL_OBS

        self.config = config
        self.mapper = AddressMapper(config.geometry)
        geometry = config.geometry
        self._banks = [
            [
                [_Bank() for _ in range(geometry.banks_per_rank)]
                for _ in range(geometry.ranks_per_channel)
            ]
            for _ in range(geometry.channels)
        ]
        #: Flat view of the same bank objects, indexed by
        #: ``(channel * ranks + rank) * banks + bank`` — the wave kernel's
        #: vectorised address decomposition lands directly on this.
        self._flat_banks = [
            bank
            for channel in self._banks
            for rank in channel
            for bank in rank
        ]
        self._bus_free_ns = [0.0] * geometry.channels
        #: Rolling activate history per (channel, rank) for tFAW.
        self._act_history: dict[tuple[int, int], list[float]] = {}
        # Wave-kernel constants, hoisted once (config is frozen): timing
        # conversions and the positional address-decompose plan.
        timing = config.timing
        self._wave_consts = (
            timing.ns(timing.cl),
            timing.ns(timing.trp),
            timing.ns(timing.trcd),
            timing.ns(timing.tras),
            timing.ns(timing.tras + timing.trp),
            timing.ns(timing.burst_cycles),
            timing.tfaw,
            timing.ns(timing.tfaw),
            timing.trefi_ns,
            timing.trefi_ns - timing.trfc_ns,
        )
        spec = self.mapper.field_spec
        self._wave_sizes = tuple(size for _, size in spec)
        names = [name for name, _ in spec]
        self._wave_pos = (
            names.index("channel"),
            names.index("rank"),
            names.index("bank"),
            names.index("row"),
        )
        self.stats = DRAMStats()
        self.obs = obs if obs is not None else NULL_OBS
        #: Hot-path flag: per-bank accounting only when someone is looking.
        self._track_banks = self.obs.enabled

    # -- refresh -----------------------------------------------------------

    def _after_refresh(self, t_ns: float) -> float:
        """Push a command start time out of any refresh window.

        All ranks refresh in lockstep every tREFI, occupying the last
        tRFC of each interval.  A refresh also closes every row (the
        DRAM's auto-precharge on REF), which the row-buffer state ignores
        here — a small optimism that applies equally to every protection
        mode under comparison.
        """
        timing = self.config.timing
        if timing.trefi_ns <= 0:
            return t_ns
        position = t_ns % timing.trefi_ns
        if position >= timing.trefi_ns - timing.trfc_ns:
            return t_ns - position + timing.trefi_ns
        return t_ns

    # -- single access ---------------------------------------------------

    def would_row_hit(self, addr: int) -> bool:
        """Peek whether ``addr`` would hit the open row right now."""
        loc = self.mapper.map(addr)
        bank = self._banks[loc.channel][loc.rank][loc.bank]
        return bank.open_row == loc.row

    def access(self, addr: int, is_write: bool, now_ns: float) -> AccessTiming:
        """Perform one 64-byte access, updating bank and bus state."""
        timing = self.config.timing
        loc: MappedAddress = self.mapper.map(addr)
        bank = self._banks[loc.channel][loc.rank][loc.bank]

        start = self._after_refresh(max(now_ns, bank.ready_ns))
        if bank.open_row == loc.row:
            row_hit = True
            data_ready = start + timing.ns(timing.cl)
        else:
            row_hit = False
            t = start
            if bank.open_row is not None:
                # Precharge may not begin before tRAS from the activate.
                t = max(t, bank.act_ns + timing.ns(timing.tras))
                t += timing.ns(timing.trp)
            # tFAW: at most four activates per rank per rolling window.
            if timing.tfaw:
                key = (loc.channel, loc.rank)
                history = self._act_history.setdefault(key, [])
                if len(history) >= 4:
                    t = max(t, history[-4] + timing.ns(timing.tfaw))
                history.append(t)
                del history[:-4]
            t += timing.ns(timing.trcd)
            bank.act_ns = t - timing.ns(timing.trcd)
            bank.open_row = loc.row
            data_ready = t + timing.ns(timing.cl)

        burst_start = max(data_ready, self._bus_free_ns[loc.channel])
        complete = burst_start + timing.ns(timing.burst_cycles)
        self._bus_free_ns[loc.channel] = complete
        bank.ready_ns = complete
        if self.config.page_policy is PagePolicy.CLOSED:
            # Auto-precharge: the next access always activates, but never
            # pays the explicit precharge or waits out tRAS here (the
            # precharge overlaps the idle gap; tRAS still bounds it).
            bank.ready_ns = max(
                complete, bank.act_ns + timing.ns(timing.tras + timing.trp)
            )
            bank.open_row = None

        self.stats.busy_ns += complete - start
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        if row_hit:
            self.stats.row_hits += 1
        else:
            self.stats.row_misses += 1
        if self._track_banks:
            entry = self.stats.per_bank.setdefault(
                (loc.channel, loc.rank, loc.bank), [0, 0]
            )
            entry[0 if row_hit else 1] += 1
        return AccessTiming(start, complete, row_hit)

    def publish_metrics(self, registry, prefix: str = "dram") -> None:
        """Mirror the DRAM counters (and per-bank detail) into a registry.

        Per-bank names follow ``dram.bank.c{ch}r{rank}b{bank}.row_hits``.
        """
        registry.update_counters(prefix, self.stats.as_dict())
        registry.set_gauge(f"{prefix}.busy_ns", self.stats.busy_ns)
        registry.set_gauge(f"{prefix}.row_hit_rate", self.stats.row_hit_rate)
        for (ch, rank, bank), (hits, misses) in self.stats.per_bank.items():
            registry.update_counters(
                f"{prefix}.bank.c{ch}r{rank}b{bank}",
                {"row_hits": hits, "row_misses": misses},
            )

    # -- batched access (the wave kernel) ----------------------------------

    def service_wave(
        self, requests: Sequence[tuple[int, bool]], now_ns: float
    ) -> tuple[list[float], list[float], list[bool]]:
        """Service a wave of simultaneously ready requests *in order*.

        Bit-exact replacement for calling :meth:`access` once per request
        at the same ``now_ns`` (same float operations in the same order,
        same bank/bus/stats mutations), but with the address decomposition
        vectorised up front and the command-timing recurrence run as one
        tight loop over pre-resolved bank state.  Returns per-request
        ``(start_ns, complete_ns, row_hit)`` as three parallel lists.

        The serial recurrence is irreducible — each request's start time
        depends on the bank/bus state its predecessors left behind — so
        this is a kernel over a *wave*, carrying bank state across calls
        exactly like the scalar path does.
        """
        n = len(requests)
        if n == 0:
            return [], [], []
        geometry = self.config.geometry
        if n <= 24:
            # A short wave (one MSHR group): the pure-Python decomposition
            # beats the numpy path's array setup.  Same integer arithmetic
            # either way — see AddressMapper.map_lists.
            block_bytes = geometry.block_bytes
            total_blocks = geometry.total_blocks
            sizes = self._wave_sizes
            ch_pos, rank_pos, bank_pos, row_pos = self._wave_pos
            channels = []
            rows = []
            ranks = []
            flat_index = []
            rpc = geometry.ranks_per_channel
            bpr = geometry.banks_per_rank
            vals = [0] * len(sizes)
            for request in requests:
                block = (request[0] // block_bytes) % total_blocks
                for j, size in enumerate(sizes):
                    vals[j] = block % size
                    block //= size
                ch = vals[ch_pos]
                rank = vals[rank_pos]
                channels.append(ch)
                rows.append(vals[row_pos])
                ranks.append(rank)
                flat_index.append(
                    (ch * rpc + rank) * bpr + vals[bank_pos]
                )
        else:
            addrs = np.fromiter(
                (request[0] for request in requests), dtype=np.int64, count=n
            )
            fields = self.mapper.map_arrays(addrs)
            channel = fields["channel"]
            rows = fields["row"].tolist()
            flat_index = (
                (channel * geometry.ranks_per_channel + fields["rank"])
                * geometry.banks_per_rank
                + fields["bank"]
            ).tolist()
            channels = channel.tolist()
            ranks = fields["rank"].tolist()

        (
            cl_ns,
            trp_ns,
            trcd_ns,
            tras_ns,
            tras_trp_ns,
            burst_ns,
            tfaw,
            tfaw_ns,
            trefi,
            refresh_edge,
        ) = self._wave_consts
        closed = self.config.page_policy is PagePolicy.CLOSED
        flat_banks = self._flat_banks
        bus = self._bus_free_ns
        history_map = self._act_history
        track = self._track_banks
        per_bank = self.stats.per_bank

        busy_ns = self.stats.busy_ns
        reads = writes = row_hits = row_misses = 0
        starts: list[float] = []
        completes: list[float] = []
        hits: list[bool] = []
        for request, row, ch, rank, flat in zip(
            requests, rows, channels, ranks, flat_index
        ):
            bank = flat_banks[flat]
            start = now_ns if now_ns > bank.ready_ns else bank.ready_ns
            if trefi > 0:
                position = start % trefi
                if position >= refresh_edge:
                    start = start - position + trefi
            if bank.open_row == row:
                row_hit = True
                data_ready = start + cl_ns
            else:
                row_hit = False
                t = start
                if bank.open_row is not None:
                    after_ras = bank.act_ns + tras_ns
                    if after_ras > t:
                        t = after_ras
                    t += trp_ns
                if tfaw:
                    key = (ch, rank)
                    history = history_map.get(key)
                    if history is None:
                        history = history_map[key] = []
                    if len(history) >= 4:
                        window = history[-4] + tfaw_ns
                        if window > t:
                            t = window
                    history.append(t)
                    del history[:-4]
                t += trcd_ns
                bank.act_ns = t - trcd_ns
                bank.open_row = row
                data_ready = t + cl_ns
            burst_start = bus[ch]
            if data_ready > burst_start:
                burst_start = data_ready
            complete = burst_start + burst_ns
            bus[ch] = complete
            bank.ready_ns = complete
            if closed:
                precharged = bank.act_ns + tras_trp_ns
                bank.ready_ns = (
                    complete if complete > precharged else precharged
                )
                bank.open_row = None
            busy_ns += complete - start
            if request[1]:
                writes += 1
            else:
                reads += 1
            if row_hit:
                row_hits += 1
            else:
                row_misses += 1
            if track:
                entry = per_bank.setdefault(
                    (ch, rank, flat % geometry.banks_per_rank),
                    [0, 0],
                )
                entry[0 if row_hit else 1] += 1
            starts.append(start)
            completes.append(complete)
            hits.append(row_hit)

        stats = self.stats
        stats.busy_ns = busy_ns
        stats.reads += reads
        stats.writes += writes
        stats.row_hits += row_hits
        stats.row_misses += row_misses
        return starts, completes, hits

    def access_batch(
        self, requests: Sequence[tuple[int, bool]], now_ns: float
    ) -> list[AccessTiming]:
        """Service simultaneously ready requests, row hits first.

        ``requests`` is a sequence of ``(addr, is_write)``.  Results are
        returned in the original request order.  This models the memory
        controller's first-ready first-come-first-served queue at the
        granularity the interval simulator needs: within one miss group,
        requests to open rows are scheduled before row conflicts.

        Returns exactly ``len(requests)`` timings.  An unfilled slot would
        mean the scheduler dropped a request on the floor; that is an
        invariant violation and raises instead of being silently hidden
        (the old ``[r for r in results if r is not None]`` filter shrank
        the result list, desynchronising it from the request order).
        """
        order = sorted(
            range(len(requests)),
            key=lambda i: (not self.would_row_hit(requests[i][0]), i),
        )
        starts, completes, hits = self.service_wave(
            [requests[i] for i in order], now_ns
        )
        serviced = min(len(starts), len(completes), len(hits))
        if serviced != len(requests):
            raise RuntimeError(
                f"access_batch serviced {serviced} of "
                f"{len(requests)} requests; the FR-FCFS order must "
                "cover every slot exactly once"
            )
        results: list[Optional[AccessTiming]] = [None] * len(requests)
        for position, i in enumerate(order):
            results[i] = AccessTiming(
                starts[position], completes[position], hits[position]
            )
        return [result for result in results if result is not None]
