"""Memory-controller front end: request queues and scheduling policy.

DRAMSim2 — the paper's memory model — couples a transaction queue to the
bank state machine; this module provides that front end over
:class:`~repro.memory.dram.DRAMSystem`: separate read and write queues,
FR-FCFS or FCFS arbitration, read priority with watermark-based write
draining (writes are buffered and drained in batches so they stay off the
read critical path, as in the performance model's assumption that
writebacks do not stall the core).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.memory.dram import AccessTiming, DRAMSystem

__all__ = ["SchedulingPolicy", "MemRequest", "MemoryScheduler"]


class SchedulingPolicy(enum.Enum):
    FCFS = "fcfs"  # strictly oldest-first
    FRFCFS = "fr-fcfs"  # first-ready (row hit) first, then oldest


@dataclass
class MemRequest:
    """One 64-byte transaction."""

    addr: int
    is_write: bool
    arrival_ns: float
    timing: Optional[AccessTiming] = None

    @property
    def latency_ns(self) -> float:
        if self.timing is None:
            raise ValueError("request not yet serviced")
        return self.timing.complete_ns - self.arrival_ns


@dataclass
class SchedulerStats:
    serviced_reads: int = 0
    serviced_writes: int = 0
    drain_entries: int = 0  # times the write drain engaged
    total_read_latency_ns: float = 0.0

    @property
    def mean_read_latency_ns(self) -> float:
        if not self.serviced_reads:
            return 0.0
        return self.total_read_latency_ns / self.serviced_reads

    def as_dict(self) -> dict[str, float]:
        return {
            "serviced_reads": self.serviced_reads,
            "serviced_writes": self.serviced_writes,
            "drain_entries": self.drain_entries,
            "total_read_latency_ns": self.total_read_latency_ns,
        }

    def merge(self, other: "SchedulerStats") -> "SchedulerStats":
        self.serviced_reads += other.serviced_reads
        self.serviced_writes += other.serviced_writes
        self.drain_entries += other.drain_entries
        self.total_read_latency_ns += other.total_read_latency_ns
        return self


class MemoryScheduler:
    """Services queued requests against the bank-timing model."""

    def __init__(
        self,
        dram: DRAMSystem,
        policy: SchedulingPolicy = SchedulingPolicy.FRFCFS,
        write_queue_depth: int = 32,
        drain_high: float = 0.75,
        drain_low: float = 0.25,
    ) -> None:
        if not 0.0 <= drain_low < drain_high <= 1.0:
            raise ValueError("need 0 <= drain_low < drain_high <= 1")
        self.dram = dram
        self.policy = policy
        self.write_queue_depth = write_queue_depth
        self._drain_high = max(1, int(drain_high * write_queue_depth))
        self._drain_low = int(drain_low * write_queue_depth)
        self._reads: list[MemRequest] = []
        self._writes: list[MemRequest] = []
        self._draining = False
        self.stats = SchedulerStats()

    # -- queueing ------------------------------------------------------------

    def submit(self, request: MemRequest) -> None:
        (self._writes if request.is_write else self._reads).append(request)

    @property
    def pending(self) -> int:
        return len(self._reads) + len(self._writes)

    # -- arbitration -----------------------------------------------------------

    def _candidates(self, now_ns: float) -> list[MemRequest]:
        """The queue the controller serves this cycle."""
        if self._draining:
            if len(self._writes) <= self._drain_low:
                self._draining = False
        elif len(self._writes) >= self._drain_high:
            self._draining = True
            self.stats.drain_entries += 1
        if self._draining and self._writes:
            return self._writes
        if self._reads:
            return self._reads
        return self._writes

    def _pick(self, queue: list[MemRequest], now_ns: float) -> MemRequest:
        arrived = [r for r in queue if r.arrival_ns <= now_ns] or queue
        if self.policy is SchedulingPolicy.FCFS:
            return min(arrived, key=lambda r: r.arrival_ns)
        return min(
            arrived,
            key=lambda r: (not self.dram.would_row_hit(r.addr), r.arrival_ns),
        )

    # -- service loop -----------------------------------------------------------

    def service_one(self, now_ns: float) -> Optional[MemRequest]:
        """Issue the next request per policy; returns it with timing set."""
        queue = self._candidates(now_ns)
        if not queue:
            return None
        request = self._pick(queue, now_ns)
        queue.remove(request)
        start = max(now_ns, request.arrival_ns)
        request.timing = self.dram.access(request.addr, request.is_write, start)
        if request.is_write:
            self.stats.serviced_writes += 1
        else:
            self.stats.serviced_reads += 1
            self.stats.total_read_latency_ns += request.latency_ns
        obs = self.dram.obs
        if obs.enabled and not request.is_write:
            obs.metrics.observe("scheduler.read_latency_ns", request.latency_ns)
        return request

    def publish_metrics(self, registry, prefix: str = "scheduler") -> None:
        """Mirror the scheduler counters into a metrics registry."""
        registry.update_counters(prefix, self.stats.as_dict())
        registry.set_gauge(
            f"{prefix}.mean_read_latency_ns", self.stats.mean_read_latency_ns
        )

    def run_until_empty(self, start_ns: float = 0.0) -> list[MemRequest]:
        """Drain all queues, advancing time with each service."""
        serviced = []
        now = start_ns
        while self.pending:
            request = self.service_one(now)
            if request is None:
                break
            serviced.append(request)
            # The next arbitration happens when this command started; the
            # bank model already pipelines overlapping work internally.
            now = max(now, request.timing.start_ns)
        return serviced
