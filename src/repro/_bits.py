"""Bit-level substrate shared by the ECC and compression layers.

Conventions used throughout the library:

* A 64-byte memory block is a ``bytes`` object of length 64.
* Bit-level views of blocks and code words are Python ``int`` values in
  *little-endian bit order*: bit ``i`` of the integer is bit ``i % 8`` of
  byte ``i // 8``.  This makes ``int.from_bytes(data, "little")`` the
  canonical conversion and keeps bit indices stable across byte slicing.
* Variable-width bitstreams (compressed payloads) are produced with
  :class:`BitWriter` and consumed with :class:`BitReader`.  The first value
  written is the lowest-order field of the resulting integer, so a reader
  that consumes fields in the same order recovers them exactly.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple

__all__ = [
    "Bits",
    "BitReader",
    "BitWriter",
    "bytes_to_int",
    "int_to_bytes",
    "bit_slice",
    "popcount",
    "parity",
    "iter_set_bits",
]


class Bits(NamedTuple):
    """An integer value carrying an explicit bit width.

    ``value`` must be non-negative and fit in ``nbits`` bits.  ``Bits`` is
    the interchange type between compression schemes (which produce
    variable-width payloads) and the COP codec (which pads them into fixed
    SECDED data segments).
    """

    value: int
    nbits: int

    def to_bytes(self) -> bytes:
        """Pack into the minimum number of little-endian bytes."""
        return self.value.to_bytes((self.nbits + 7) // 8, "little")

    def validate(self) -> "Bits":
        """Return self, raising ``ValueError`` if value does not fit."""
        if self.nbits < 0:
            raise ValueError(f"negative bit width {self.nbits}")
        if self.value < 0 or self.value >> self.nbits:
            raise ValueError(f"value does not fit in {self.nbits} bits")
        return self


def bytes_to_int(data: bytes) -> int:
    """Little-endian bytes -> int (bit i of result = bit i%8 of byte i//8)."""
    return int.from_bytes(data, "little")


def int_to_bytes(value: int, length: int) -> bytes:
    """Int -> little-endian bytes of exactly ``length`` bytes."""
    return value.to_bytes(length, "little")


def bit_slice(value: int, start: int, nbits: int) -> int:
    """Extract ``nbits`` bits of ``value`` starting at bit ``start``."""
    return (value >> start) & ((1 << nbits) - 1)


def popcount(value: int) -> int:
    """Number of set bits (delegates to ``int.bit_count``)."""
    return value.bit_count()


def parity(value: int) -> int:
    """Overall parity (popcount mod 2) of ``value``."""
    return value.bit_count() & 1


def iter_set_bits(value: int) -> Iterable[int]:
    """Yield indices of set bits of ``value`` in ascending order."""
    while value:
        low = value & -value
        yield low.bit_length() - 1
        value ^= low


class BitWriter:
    """Accumulates variable-width fields into a single little-endian int.

    Fields are appended lowest-order first, mirroring how a hardware
    compressor would shift bits onto a wire.  Example::

        w = BitWriter()
        w.write(0b10, 2)       # 2-bit scheme tag
        w.write(0x3FF, 10)
        bits = w.getbits()     # Bits(value=0b1111111111_10, nbits=12)
    """

    def __init__(self) -> None:
        self._value = 0
        self._nbits = 0

    def write(self, value: int, nbits: int) -> None:
        """Append ``nbits`` bits.  ``value`` must fit in ``nbits``."""
        if nbits < 0:
            raise ValueError(f"negative field width {nbits}")
        if value < 0 or (nbits < value.bit_length()):
            raise ValueError(f"value {value:#x} does not fit in {nbits} bits")
        self._value |= value << self._nbits
        self._nbits += nbits

    def write_bytes(self, data: bytes) -> None:
        """Append whole bytes (8 bits each, little-endian order)."""
        self.write(bytes_to_int(data), 8 * len(data))

    @property
    def nbits(self) -> int:
        """Total number of bits written so far."""
        return self._nbits

    def getbits(self) -> Bits:
        """Snapshot the accumulated stream as :class:`Bits`."""
        return Bits(self._value, self._nbits)


class BitReader:
    """Consumes variable-width fields from a :class:`Bits` payload.

    The reader enforces its bounds: reading past the end raises
    ``ValueError``, which compression decoders rely on to reject corrupt
    payloads instead of fabricating data.
    """

    def __init__(self, bits: Bits) -> None:
        bits.validate()
        self._value = bits.value
        self._nbits = bits.nbits
        self._pos = 0

    def read(self, nbits: int) -> int:
        """Consume and return the next ``nbits`` bits."""
        if nbits < 0:
            raise ValueError(f"negative field width {nbits}")
        if self._pos + nbits > self._nbits:
            raise ValueError(
                f"bitstream underrun: need {nbits} bits at offset "
                f"{self._pos}, only {self._nbits - self._pos} remain"
            )
        out = (self._value >> self._pos) & ((1 << nbits) - 1)
        self._pos += nbits
        return out

    def read_bytes(self, nbytes: int) -> bytes:
        """Consume ``nbytes`` whole bytes."""
        return int_to_bytes(self.read(8 * nbytes), nbytes)

    @property
    def remaining(self) -> int:
        """Bits left to read."""
        return self._nbits - self._pos

    @property
    def position(self) -> int:
        """Bits consumed so far."""
        return self._pos
