"""Ablation: scheme choices at COP's low target ratios.

Two design decisions DESIGN.md calls out:

* **RLE vs FPC** — FPC's 48 bits of fixed prefix metadata make it weaker
  than a 7-bit-per-run RLE when only 34 bits must be freed (the paper's
  reason to exclude FPC from the hybrid);
* **MSB vs full BDI** — BDI targets ~2x ratios; at a 6.25% target the
  simpler MSB comparison compresses at least as many blocks, with no
  adders (the paper's motivation for MSB).
"""

from conftest import run_experiment  # noqa: F401  (keeps import style uniform)

from repro.compression import (
    BDICompressor,
    FPCCompressor,
    MSBCompressor,
    RLECompressor,
    payload_budget,
)
from repro.experiments.common import Scale, sample_blocks
from repro.workloads.profiles import MEMORY_INTENSIVE


def _fractions(scheme, budget, per_bench_blocks):
    return {
        name: sum(1 for b in blocks if scheme.compressible(b, budget))
        / len(blocks)
        for name, blocks in per_bench_blocks.items()
    }


def test_scheme_ablation_low_ratio(benchmark):
    scale = Scale.from_env(default=Scale.SMALL)
    samples = scale.pick(smoke=100, small=600, full=6000)
    budget = payload_budget(4)
    per_bench = {
        name: sample_blocks(name, samples) for name in MEMORY_INTENSIVE
    }

    schemes = {
        "RLE": RLECompressor(34),
        "FPC": FPCCompressor(),
        "MSB": MSBCompressor(5, True),
        "BDI": BDICompressor(),
    }

    results = benchmark.pedantic(
        lambda: {
            name: _fractions(s, budget, per_bench)
            for name, s in schemes.items()
        },
        rounds=1,
        iterations=1,
    )
    averages = {
        name: sum(v.values()) / len(v) for name, v in results.items()
    }
    print()
    for name, avg in sorted(averages.items(), key=lambda kv: -kv[1]):
        print(f"  {name}: {avg:.1%} of blocks compressible at the 4B target")
    # RLE beats FPC at low target ratios (metadata economics).
    assert averages["RLE"] > averages["FPC"]
    # MSB matches or beats full BDI at this target on these workloads.
    assert averages["MSB"] >= averages["BDI"] - 0.02
