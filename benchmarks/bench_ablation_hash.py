"""Ablation: the static hash (Section 3.1).

Application data repeats values; if a repeated 128-bit value happens to be
a valid code word, an unhashed decoder would see four valid words and
misread the block.  The hash XORs a different mask into each segment,
restoring random-data alias odds.  We measure alias rates over
repeated-value blocks with the hash on and (simulated) off.
"""

import random

from repro.core.codec import COPCodec


def _repeated_value_blocks(codec: COPCodec, count: int) -> list[bytes]:
    """Blocks of one 128-bit value repeated four times.

    Half the values are deliberately chosen to be valid code words — the
    worst case the hash exists to defeat.
    """
    rng = random.Random("hash-ablation")
    blocks = []
    for i in range(count):
        if i % 2:
            word = codec.code.encode(rng.getrandbits(120))
        else:
            word = rng.getrandbits(128)
        blocks.append(word.to_bytes(16, "little") * 4)
    return blocks


def test_hash_ablation(benchmark):
    codec = COPCodec()
    blocks = _repeated_value_blocks(codec, 2000)

    def census():
        with_hash = sum(1 for b in blocks if codec.is_alias(b))
        without_hash = 0
        for block in blocks:
            words = [
                int.from_bytes(block[i : i + 16], "little")
                for i in range(0, 64, 16)
            ]
            valid = sum(1 for w in words if codec.code.syndrome(w) == 0)
            if valid >= codec.config.codeword_threshold:
                without_hash += 1
        return with_hash, without_hash

    with_hash, without_hash = benchmark.pedantic(
        census, rounds=1, iterations=1
    )
    print(
        f"\nalias rate over repeated-value blocks: "
        f"hash ON {with_hash / len(blocks):.4%}, "
        f"hash OFF {without_hash / len(blocks):.4%}"
    )
    # Without the hash, every repeated-code-word block aliases (~50% here);
    # with it, essentially none do.
    assert without_hash > len(blocks) * 0.4
    assert with_hash <= 2
