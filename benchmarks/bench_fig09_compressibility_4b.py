"""Regenerates Figure 9: per-scheme compressibility freeing 4 bytes."""

from conftest import run_experiment

from repro.experiments import fig08_compress_8b, fig09_compress_4b
from repro.workloads.profiles import MEMORY_INTENSIVE


def test_fig09_compressibility_4byte(benchmark, fast_scale):
    table = run_experiment(
        benchmark, fig09_compress_4b.run, fast_scale, "fig09_compress_4b"
    )
    n = len(MEMORY_INTENSIVE)
    combined = table.column("TXT+MSB+RLE")[:n]
    average = sum(combined) / n
    # Paper: 94% of blocks compress on average at the 4-byte target.
    assert average > 0.85, f"combined average {average:.2%} too low"
    # TXT carries the text-processing benchmarks.
    rows = dict(table.rows)
    txt_index = table.columns.index("TXT")
    assert rows["perlbench"][txt_index] > 0.3
    assert rows["xalancbmk"][txt_index] > 0.3
    # RLE generally outperforms FPC (the paper's rationale for dropping FPC).
    rle = table.column("RLE")[:n]
    fpc = table.column("FPC")[:n]
    assert sum(rle) / n > sum(fpc) / n


def test_freeing_4_bytes_beats_8_bytes(benchmark, fast_scale):
    """Cross-figure claim: less required compression => more coverage."""
    table4 = fig09_compress_4b.run(fast_scale)
    table8 = benchmark.pedantic(
        fig08_compress_8b.run, args=(fast_scale,), rounds=1, iterations=1
    )
    n = len(MEMORY_INTENSIVE)
    avg4 = sum(table4.column("TXT+MSB+RLE")[:n]) / n
    avg8 = sum(table8.column("MSB+RLE")[:n]) / n
    assert avg4 > avg8
