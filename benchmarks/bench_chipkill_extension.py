"""Benchmarks the COP-chipkill future-work exploration."""

from conftest import run_experiment

from repro.experiments import chipkill_ext
from repro.workloads.profiles import MEMORY_INTENSIVE


def test_chipkill_extension(benchmark, sim_scale):
    table = run_experiment(
        benchmark, chipkill_ext.run, sim_scale, "chipkill_ext"
    )
    n = len(MEMORY_INTENSIVE)
    cop = table.column("COP 6.25% cov.")[:n]
    chip = table.column("Chipkill 25% cov.")[:n]
    survival = table.column("Chip-fail survival")[:n]
    # The trade-off: the 25% target covers fewer blocks than 6.25%.
    assert sum(chip) / n < sum(cop) / n
    # But every protected block survives a whole-chip failure.
    assert all(s == 1.0 for s in survival)
