"""Regenerates Figure 12: COP-ER ECC-region storage reduction."""

from conftest import run_experiment

from repro.experiments import fig12_ecc_storage
from repro.workloads.profiles import MEMORY_INTENSIVE


def test_fig12_storage_reduction(benchmark, sim_scale):
    table = run_experiment(
        benchmark, fig12_ecc_storage.run, sim_scale, "fig12_ecc_storage"
    )
    n = len(MEMORY_INTENSIVE)
    reductions = table.column("Reduction")[:n]
    average = sum(reductions) / n
    # Paper: 80% average reduction vs the 2-bytes-per-block baseline.
    assert average > 0.5, f"average reduction {average:.2%} too low"
    assert all(-0.5 <= r <= 1.0 for r in reductions)
    # Highly compressible benchmarks barely need a region at all.
    rows = dict(table.rows)
    assert rows["mcf"][0] > 0.5
