"""Regenerates Figure 8: per-scheme compressibility freeing 8 bytes."""

from conftest import run_experiment

from repro.experiments import fig08_compress_8b
from repro.workloads.profiles import MEMORY_INTENSIVE


def test_fig08_compressibility_8byte(benchmark, fast_scale):
    table = run_experiment(
        benchmark, fig08_compress_8b.run, fast_scale, "fig08_compress_8b"
    )
    # TXT cannot free 66 bits, so the 8-byte suite is MSB+RLE (+FPC ref).
    assert "TXT" not in table.columns
    combined = table.column("MSB+RLE")[: len(MEMORY_INTENSIVE)]
    msb = table.column("MSB")[: len(MEMORY_INTENSIVE)]
    rle = table.column("RLE")[: len(MEMORY_INTENSIVE)]
    for c, m, r in zip(combined, msb, rle):
        assert c >= max(m, r) - 1e-9, "combined must dominate its members"
