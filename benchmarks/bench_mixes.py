"""Regenerates the multiprogrammed-mix extension experiment."""

from conftest import run_experiment

from repro.experiments import mixes


def test_multiprogrammed_mixes(benchmark, sim_scale):
    table = run_experiment(benchmark, mixes.run, sim_scale, "mixes")
    for mix_name, values in table.rows:
        unprot, cop, coper, ecc_reg, reduction = values
        assert unprot == 1.0
        # COP's weighted speedup stays near 1 for every mix.
        assert cop > 0.95, mix_name
        # The ECC-Region baseline is always the slowest scheme.
        assert ecc_reg <= min(cop, coper) + 1e-9, mix_name
        assert 0.0 <= reduction <= 1.0
    rows = dict(table.rows)
    # The low-compressibility mix shows the weakest SER reduction.
    assert rows["low-compress"][4] == min(v[4] for v in rows.values())
