"""Regenerates Table 3: code words in incompressible data blocks."""

from conftest import run_experiment

from repro.core.alias import codeword_count_probability
from repro.experiments import table3_aliases


def test_table3_codeword_census(benchmark, fast_scale):
    table = run_experiment(
        benchmark, table3_aliases.run, fast_scale, "table3_aliases"
    )
    rows = dict(table.rows)
    measured_1cw = rows["1 code words"][0]
    # ~1.5% of incompressible blocks show one valid code word (paper: 1.4%).
    assert 0.001 < measured_1cw < 0.05
    # Aliases (>=3 code words) are essentially absent, as in the paper.
    assert rows["3 code words"][0] < 1e-4
    assert rows["4 code words"][0] < 1e-5
    # The analytic column is the binomial model the paper derives.
    assert abs(rows["0 code words"][2] - codeword_count_probability(0)) < 1e-12
