"""Regenerates the paper's power-cost motivation (Sections 1-2)."""

from conftest import run_experiment

from repro.experiments import power_motivation


def test_power_motivation(benchmark, sim_scale):
    table = run_experiment(
        benchmark, power_motivation.run, sim_scale, "power_motivation"
    )
    rows = dict(table.rows)
    # The ninth chip costs ~12.5% in devices and a comparable share of
    # power ("substantially increasing power consumption").
    assert rows["ECC DIMM"][2] == 1.125
    assert rows["ECC DIMM"][0] > 1.08
    # COP adds no DRAM devices and essentially no power.
    assert abs(rows["COP"][0] - 1.0) < 0.03
    # The ECC-Region baseline pays in energy (extra accesses), not chips.
    assert rows["ECC Reg."][1] > rows["COP"][1] - 1e-9
