"""Benchmark: scalar vs batched epoch replay (the Fig. 11 hot path).

Each case times one fig11-style sweep — four protection modes over one
memory-intensive benchmark at SMALL scale — through the scalar
``MultiCoreSystem`` loop and through the ``use_batch`` engine
(:mod:`repro.simulation.batch`).  The recorded ``BENCH_sim.json`` pairs
``fig11_sweep_scalar_<bench>`` with ``fig11_sweep_batch_<bench>``;
``python -m repro.bench.simgate`` turns those pairs into end-to-end
speedups and gates the median (wired into ``make bench-trajectory``).

The batch cases run with ``warmup=1`` so the process-level
classification store (:data:`repro.simulation.batch._STORE`) is warm —
the steady state of a multi-mode sweep, which is exactly how fig11 uses
the engine.  The speedups only mean anything because the two paths are
bit-exact; ``tests/test_batch_sim.py`` and ``make sim-parity-smoke``
enforce that.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench import perf_case
from repro.core.controller import ProtectionMode
from repro.experiments.common import Scale
from repro.experiments.simruns import run_benchmark
from repro.simulation.config import SCALED_SYSTEM

#: Fig. 11's comparison set: the unprotected baseline, both COP variants
#: and the strongest conventional baseline.
_MODES = (
    ProtectionMode.UNPROTECTED,
    ProtectionMode.COP,
    ProtectionMode.COP_ER,
    ProtectionMode.ECC_REGION,
)

#: Memory-intensive picks spanning the compressibility range.
_BENCHES = ("lbm", "mcf", "omnetpp")


def _sweep(bench: str, use_batch: bool):
    system = replace(SCALED_SYSTEM, use_batch=use_batch)

    def run():
        for mode in _MODES:
            run_benchmark(
                bench,
                mode,
                scale=Scale.SMALL,
                cores=4,
                system=system,
                track=False,
            )

    return run


# -- trajectory cases (run by `cop-experiments bench --suite sim`) ------------

for _bench in _BENCHES:
    # Scalar sweeps are deterministic cold; skip the warmup repeat to keep
    # the suite's wall time down.
    perf_case(suite="sim", name=f"fig11_sweep_scalar_{_bench}", repeats=2, warmup=0)(
        lambda bench=_bench: _sweep(bench, use_batch=False)
    )
    perf_case(suite="sim", name=f"fig11_sweep_batch_{_bench}", repeats=3, warmup=1)(
        lambda bench=_bench: _sweep(bench, use_batch=True)
    )


@pytest.mark.parametrize("bench", _BENCHES)
def test_batch_sweep_matches_scalar_here(bench):
    """A speedup between diverging paths is meaningless — spot-check
    bit-equality on this machine (the full matrix lives in
    ``tests/test_batch_sim.py``)."""
    from dataclasses import asdict

    scalar = run_benchmark(
        bench, ProtectionMode.COP, scale=Scale.SMOKE, cores=2, track=False
    )
    batch = run_benchmark(
        bench,
        ProtectionMode.COP,
        scale=Scale.SMOKE,
        cores=2,
        system=replace(SCALED_SYSTEM, use_batch=True),
        track=False,
    )
    assert asdict(scalar.perf) == asdict(batch.perf)
    assert scalar.memory.stats.as_dict() == batch.memory.stats.as_dict()
