"""Field failure-mode mix (Sridharan & Liberty) across schemes.

Reproduces Section 4's modelling argument mechanically: COP(-ER) and a
conventional ECC DIMM correct and fail the *same* failure categories —
single-bit and single-column events are corrected, same-word multi-bit
and row failures are not — which justifies the paper's single-bit model
for comparing them.
"""

from repro.core.controller import ProtectedMemory, ProtectionMode
from repro.reliability.failure_modes import SRIDHARAN_MIX, FailureModeCampaign
from repro.workloads.blocks import BlockSource
from repro.workloads.profiles import PROFILES

_TRIALS = 1200


def _build(mode, blocks=300):
    source = BlockSource(PROFILES["milc"], seed=31)
    memory = ProtectedMemory(mode)
    golden = {}
    addr = 0
    while len(golden) < blocks:
        data = source.block(addr)
        if memory.write(addr, data).accepted:
            golden[addr] = data
        addr += 4096
    return memory, golden


def test_failure_mode_mix(benchmark):
    def campaign():
        results = {}
        for mode in (
            ProtectionMode.UNPROTECTED,
            ProtectionMode.COP,
            ProtectionMode.COP_ER,
            ProtectionMode.ECC_DIMM,
        ):
            memory, golden = _build(mode)
            run = FailureModeCampaign(memory, golden, seed=11)
            run.run(_TRIALS)
            results[mode] = run
        return results

    results = benchmark.pedantic(campaign, rounds=1, iterations=1)
    print()
    header = f"{'mode':12s}" + "".join(
        f"{m.name:>22s}" for m in SRIDHARAN_MIX
    )
    print(header)
    for mode, run in results.items():
        cells = "".join(
            f"{run.outcomes[m.name].survival_rate:>22.1%}"
            for m in SRIDHARAN_MIX
        )
        print(f"{mode.value:12s}{cells}   overall {run.overall_survival():.1%}")

    coper = results[ProtectionMode.COP_ER]
    dimm = results[ProtectionMode.ECC_DIMM]
    # Protected schemes survive all single-bit-class events...
    assert coper.outcomes["single-bit"].survival_rate == 1.0
    assert dimm.outcomes["single-bit"].survival_rate == 1.0
    # ...and none of them survive same-word multi-bit events.
    assert coper.outcomes["same-word multi-bit"].survival_rate < 0.2
    assert dimm.outcomes["same-word multi-bit"].survival_rate < 0.2
    # The paper's equivalence: comparable overall coverage.
    assert abs(coper.overall_survival() - dimm.overall_survival()) < 0.08
    assert results[ProtectionMode.UNPROTECTED].overall_survival() == 0.0
