"""Regenerates Figure 11: normalized IPC across protection schemes."""

from conftest import run_experiment

from repro.experiments import fig11_performance


def test_fig11_normalized_ipc(benchmark, sim_scale):
    table = run_experiment(
        benchmark, fig11_performance.run, sim_scale, "fig11_performance"
    )
    unprot, cop, coper, ecc_reg = table.row("Geomean")
    assert abs(unprot - 1.0) < 1e-9
    # COP costs only the 4-cycle decompress latency: a few percent at most.
    assert cop > 0.9
    # COP-ER adds ECC-entry traffic for incompressible blocks only.
    assert coper <= cop + 1e-9
    # The ECC-Region baseline touches ECC metadata on every miss and
    # writeback; the paper reports COP-ER ~8% ahead of it.
    assert ecc_reg < coper
    assert coper / ecc_reg > 1.02
