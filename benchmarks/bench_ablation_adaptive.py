"""Ablation: adaptive code strength (the Section 3.1 possibility).

Measures, per benchmark, how many blocks the adaptive codec can place in
the strong (8-byte, multi-word-correcting) tier at zero extra storage,
and validates the reliability payoff with double-error injection:
adaptive-strong blocks survive spread double flips that silently corrupt
standard COP blocks.
"""

import random

from repro.core.adaptive import AdaptiveCodec
from repro.experiments.common import Scale, sample_blocks
from repro.workloads.profiles import MEMORY_INTENSIVE


def test_adaptive_strength_ablation(benchmark):
    scale = Scale.from_env(default=Scale.SMOKE)
    samples = scale.pick(smoke=100, small=600, full=4000)
    adaptive = AdaptiveCodec()
    rng = random.Random("adaptive-bench")

    def sweep():
        tiers = {}
        for name in MEMORY_INTENSIVE:
            blocks = sample_blocks(name, samples)
            counts = {"strong": 0, "standard": 0, "raw": 0}
            for block in blocks:
                counts[adaptive.strength_of(block)] += 1
            tiers[name] = {
                k: v / len(blocks) for k, v in counts.items()
            }
        return tiers

    tiers = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"  {'benchmark':15s} {'strong':>8s} {'standard':>9s} {'raw':>6s}")
    for name, t in tiers.items():
        print(
            f"  {name:15s} {t['strong']:8.1%} {t['standard']:9.1%} "
            f"{t['raw']:6.1%}"
        )
    strong_avg = sum(t["strong"] for t in tiers.values()) / len(tiers)
    covered_avg = sum(
        t["strong"] + t["standard"] for t in tiers.values()
    ) / len(tiers)
    print(
        f"  average: {strong_avg:.1%} strong-tier, {covered_avg:.1%} "
        "protected overall"
    )
    # The adaptive scheme never covers fewer blocks than plain COP (the
    # standard tier is the fallback), and a meaningful share upgrades.
    assert covered_avg > 0.75
    assert strong_avg > 0.25

    # Reliability payoff: spread double errors on strong-tier blocks.
    survived = trials = 0
    for name in ("lbm", "mcf"):
        for block in sample_blocks(name, samples // 2, seed=9):
            encoded, strength = adaptive.encode(block)
            if strength != "strong":
                continue
            struck = bytearray(encoded.stored)
            words = rng.sample(range(8), 2)
            for word in words:
                struck[word * 8 + rng.randrange(8)] ^= 1 << rng.randrange(8)
            decoded = adaptive.decode(bytes(struck))
            trials += 1
            if decoded.result.data == block:
                survived += 1
    assert trials > 0
    print(f"  strong-tier double-error survival: {survived}/{trials}")
    assert survived / trials > 0.95
