"""Regenerates Figure 4: MSB compression, shifted vs unshifted comparison."""

from conftest import run_experiment

from repro.experiments import fig04_msb_shift


def test_fig04_shifted_msb_improves_fp(benchmark, fast_scale):
    table = run_experiment(
        benchmark, fig04_msb_shift.run, fast_scale, "fig04_msb_shift"
    )
    unshifted, shifted = table.row("Average")
    # The paper reports ~15 pp average improvement on SPECfp 2006.
    assert shifted - unshifted > 0.05
    # Shifting never hurts a floating-point benchmark in this dataset.
    for label, (u, s) in table.rows:
        assert s >= u - 0.02, f"{label}: shifted lost compressibility"
