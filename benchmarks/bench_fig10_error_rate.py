"""Regenerates Figure 10: soft-error-rate reduction of COP and COP-ER."""

from conftest import run_experiment

from repro.experiments import fig10_error_rate
from repro.workloads.profiles import MEMORY_INTENSIVE


def test_fig10_error_rate_reduction(benchmark, sim_scale):
    table = run_experiment(
        benchmark, fig10_error_rate.run, sim_scale, "fig10_error_rate"
    )
    n = len(MEMORY_INTENSIVE)
    cop8 = table.column("COP 8-byte")[:n]
    cop4 = table.column("COP 4-byte")[:n]
    coper = table.column("COP-ER 4-byte")[:n]
    # Paper: the 4-byte variant protects more blocks than the 8-byte one,
    # averaging ~93%; COP-ER corrects all single-bit errors (~100%).
    assert sum(cop4) / n > 0.8
    assert sum(cop4) / n > sum(cop8) / n
    assert all(c >= 0.999 for c in coper)
    # Reductions are proper fractions.
    for values in (cop8, cop4, coper):
        assert all(0.0 <= v <= 1.0 for v in values)
