"""Ablation: the code-word threshold (3-of-4 vs 2-of-4).

Section 3.1: "the code word threshold could be reduced from 3 to 2,
although the number of aliases would increase by orders of magnitude."
This bench quantifies that trade-off analytically and with a measured
census over random (incompressible-like) data.
"""

import random

import numpy as np
import pytest

from repro.core.alias import alias_probability, codeword_counts_bulk
from repro.core.codec import COPCodec
from repro.core.config import COPConfig


def _census(threshold: int, samples: int) -> tuple[float, float]:
    config = COPConfig(ecc_bytes=4, codeword_threshold=threshold)
    codec = COPCodec(config)
    rng = random.Random(f"thresh{threshold}")
    blocks = np.frombuffer(
        rng.randbytes(64 * samples), dtype=np.uint8
    ).reshape(-1, 64)
    counts = codeword_counts_bulk(blocks, codec)
    return float(np.mean(counts >= threshold)), alias_probability(config)


def test_threshold_ablation(benchmark):
    measured = {}
    analytic = {}

    def sweep():
        for threshold in (2, 3, 4):
            measured[threshold], analytic[threshold] = _census(
                threshold, samples=200_000
            )
        return measured

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("threshold  P(alias) analytic   P(alias) measured")
    for threshold in (2, 3, 4):
        print(
            f"    {threshold}        {analytic[threshold]:12.3e}      "
            f"{measured[threshold]:12.3e}"
        )
    # Orders of magnitude more aliases at threshold 2 (paper's warning).
    assert analytic[2] / analytic[3] > 100
    assert analytic[3] / analytic[4] > 100
    # Measured rates agree with the binomial model where measurable.
    assert measured[2] == pytest.approx(analytic[2], rel=0.5, abs=1e-5)
