"""Throughput benchmarks of the COP service daemon (repro.service).

Trajectory cases for ``cop-experiments bench --suite service``: the
threaded sharded daemon under a deterministic mixed-tenant burst, the
serial replay pipeline it is parity-checked against, the raw
in-process request path without the loadgen driver, and the write path
with and without the durable WAL.  No paper counterpart — these track
the reproduction's service front end the same way the kernels suite
tracks its codecs.

``test_wal_write_path_overhead_under_10_percent`` is the CI guard for
the resilience layer's durability tax: per accepted write the WAL adds
one framed append plus its share of a group commit (one fdatasync per
drained batch), and that must stay below 10% of a cold (memo-miss)
write.  The guard measures the two costs directly and compares them —
an end-to-end A/B delta of two threaded runs drowns in scheduler noise
on a busy host, a component ratio does not (same idiom as
``bench_resilience_overhead.py``).
"""

import random
import tempfile
from concurrent.futures import Future

from repro.bench import perf_case
from repro.obs.perf import measure, now_ns
from repro.service import (
    COPService,
    LoadgenConfig,
    Request,
    ServiceConfig,
    ShardWAL,
    run_loadgen,
)
from repro.service.loadgen import interleave
from repro.service.shard import Shard, _Work


def _config(ops):
    # Small arenas keep the schedule warm-up (first-touch compression
    # probes) from dominating what should be a steady-state number.
    return LoadgenConfig(
        ops=ops,
        tenants=4,
        window=32,
        blocks_per_tenant=128,
        service=ServiceConfig(shards=4),
    )


@perf_case(suite="service")
def service_threaded_loadgen():
    """4 tenant threads x 4 shards, in-process, 8k mixed ops per repeat."""
    config = _config(8_000)
    run_loadgen(config)  # warm the schedule caches outside the timing
    return lambda: run_loadgen(config)


@perf_case(suite="service")
def service_serial_replay():
    """The parity baseline: same schedule, one request per batch."""
    config = _config(8_000)
    requests = list(interleave(config))

    def replay():
        replica = COPService(config.service)
        for request in requests:
            replica.shards[replica.route(request)].process_serially([request])

    replay()
    return replay


_WAL_BATCH = 512
_WAL_OPS = 2_048


def _write_requests(ops, fresh_rng=None):
    """Deterministic write burst: half compressible, half random blocks."""
    rng = fresh_rng or random.Random(7)
    requests = []
    for i in range(ops):
        if i % 2:
            data = (b"w%05d" % (i % 2048)).ljust(64, b".")
        else:
            data = rng.randbytes(64)
        requests.append(Request("write", id=i, addr=(i % 512) * 64, data=data))
    return requests


def _drive_writes(shard, requests):
    """Push ``requests`` through the shard's batch path, full batches."""
    for start in range(0, len(requests), _WAL_BATCH):
        work = [
            _Work(request=request, future=Future(), enqueue_ns=now_ns())
            for request in requests[start : start + _WAL_BATCH]
        ]
        shard._process(work)
        for item in work:
            assert item.future.result().status.name == "OK"


def _write_burst_case(wal_dir):
    config = ServiceConfig(
        shards=1,
        batch_max=_WAL_BATCH,
        queue_depth=8192,
        wal_dir=wal_dir,
        supervise=False,
    )
    shard = Shard(0, config)
    requests = _write_requests(4_096)
    _drive_writes(shard, requests)  # warm the memo outside the timing
    return lambda: _drive_writes(shard, requests)


@perf_case(suite="service")
def service_write_path_plain():
    """4k-write burst through one shard's batch path, no WAL."""
    return _write_burst_case(None)


@perf_case(suite="service")
def service_write_path_wal():
    """The same burst with the durable WAL group-committing per batch."""
    tmp = tempfile.TemporaryDirectory()  # lives as long as the closure
    inner = _write_burst_case(tmp.name)

    def burst(_tmp=tmp):
        inner()

    return burst


def test_wal_write_path_overhead_under_10_percent(tmp_path):
    """Per accepted write, WAL append + group commit < 10% of the write.

    Numerator: the full WAL cost per record — framed append plus the
    amortized flush+fdatasync of a ``_WAL_BATCH``-record group commit —
    timed directly against a real journal file.  Denominator: a cold
    (memo-miss) write through the shard batch path, timed over distinct
    random palettes so the codec memo never amortizes the encode away.
    """
    rng = random.Random(7)
    shard = Shard(
        0,
        ServiceConfig(
            shards=1, batch_max=_WAL_BATCH, queue_depth=8192, supervise=False
        ),
    )
    cold_runs = []
    for round_index in range(5):
        # Unique content per round keeps every encode a memo miss.
        requests = [
            Request("write", id=i, addr=(i % 512) * 64, data=rng.randbytes(64))
            for i in range(_WAL_OPS)
        ]
        start_ns = now_ns()
        _drive_writes(shard, requests)
        cold_runs.append(now_ns() - start_ns)
    write_ns = min(cold_runs) / _WAL_OPS

    wal = ShardWAL(tmp_path / "bench.wal")
    datas = [rng.randbytes(64) for _ in range(_WAL_BATCH)]

    def wal_batch():
        for i, data in enumerate(datas):
            wal.append(i, i * 64, data)
        wal.commit()

    stats = measure(wal_batch, repeats=7, warmup=2)
    wal_ns = stats.min_ns / _WAL_BATCH
    wal.close()

    fraction = wal_ns / write_ns
    print(
        f"\ncold write {write_ns:.0f} ns; wal append+commit {wal_ns:.0f} ns "
        f"per record ({100 * fraction:.1f}%)"
    )
    assert fraction < 0.10


@perf_case(suite="service", inner=4)
def service_submit_path():
    """Raw submit/result round-trips on a started service (1k pings)."""
    service = COPService(ServiceConfig(shards=4))
    service.start()
    pings = [Request("ping", id=i) for i in range(1_000)]

    def burst():
        futures = [service.submit(request) for request in pings]
        for future in futures:
            future.result()

    burst()
    return burst
