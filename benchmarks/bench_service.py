"""Throughput benchmarks of the COP service daemon (repro.service).

Trajectory cases for ``cop-experiments bench --suite service``: the
threaded sharded daemon under a deterministic mixed-tenant burst, the
serial replay pipeline it is parity-checked against, and the raw
in-process request path without the loadgen driver.  No paper
counterpart — these track the reproduction's service front end the same
way the kernels suite tracks its codecs.
"""

from repro.bench import perf_case
from repro.service import (
    COPService,
    LoadgenConfig,
    Request,
    ServiceConfig,
    run_loadgen,
)
from repro.service.loadgen import interleave


def _config(ops):
    # Small arenas keep the schedule warm-up (first-touch compression
    # probes) from dominating what should be a steady-state number.
    return LoadgenConfig(
        ops=ops,
        tenants=4,
        window=32,
        blocks_per_tenant=128,
        service=ServiceConfig(shards=4),
    )


@perf_case(suite="service")
def service_threaded_loadgen():
    """4 tenant threads x 4 shards, in-process, 8k mixed ops per repeat."""
    config = _config(8_000)
    run_loadgen(config)  # warm the schedule caches outside the timing
    return lambda: run_loadgen(config)


@perf_case(suite="service")
def service_serial_replay():
    """The parity baseline: same schedule, one request per batch."""
    config = _config(8_000)
    requests = list(interleave(config))

    def replay():
        replica = COPService(config.service)
        for request in requests:
            replica.shards[replica.route(request)].process_serially([request])

    replay()
    return replay


@perf_case(suite="service", inner=4)
def service_submit_path():
    """Raw submit/result round-trips on a started service (1k pings)."""
    service = COPService(ServiceConfig(shards=4))
    service.start()
    pings = [Request("ping", id=i) for i in range(1_000)]

    def burst():
        futures = [service.submit(request) for request in pings]
        for future in futures:
            future.result()

    burst()
    return burst
