"""Benchmark guard: fault tolerance must be (almost) free without faults.

The resilience layer wraps every job attempt (``guarded_execute``) and
every cache entry (checksum framing), so its no-fault cost is paid by
*all* sweeps, faulty or not.  This guard measures that cost directly:

* the per-attempt guard (no timeout, no chaos — the default policy) and
  the armed guard (``setitimer`` on/off per attempt) are timed at call
  volume and compared against the cost of one real SMOKE simulation,
* checksummed cache store+load round-trips are timed per operation and
  compared the same way,
* a generous end-to-end wall-clock bound catches gross regressions.

Each must stay below 5% of the work it wraps — the ISSUE's budget for
the whole layer.
"""

from __future__ import annotations

from repro.core.controller import ProtectionMode
from repro.experiments import resilience
from repro.experiments.common import Scale
from repro.experiments.resilience import ResilienceConfig
from repro.experiments.runner import ResultCache, SimJob, run_jobs
from repro.experiments.simruns import run_benchmark
from repro.obs.perf import best_seconds, measure, now_ns

_BENCH = "lbm"
_MODE = ProtectionMode.COP
_SCALE = Scale.SMOKE
_CORES = 2


def _job() -> SimJob:
    return SimJob(
        benchmark=_BENCH,
        mode=_MODE,
        scale=_SCALE,
        cores=_CORES,
        track=False,
    )


def _sim_seconds() -> float:
    return best_seconds(
        lambda: run_benchmark(
            _BENCH, _MODE, _SCALE, cores=_CORES, track=False
        ),
        rounds=3,
        reps=1,
        warmup=1,
    )


def _per_call(fn, rounds: int) -> float:
    stats = measure(fn, repeats=1, warmup=max(1, rounds // 100), inner=rounds)
    return stats.min_ns / 1e9


def test_guard_overhead_under_5_percent():
    """guarded_execute around a stub costs < 5% of one real simulation."""
    sim = _sim_seconds()
    job = _job()

    def stub(job, collect_metrics, tracer=None):
        return None

    rounds = 5000
    direct = _per_call(lambda: stub(job, False), rounds)
    idle_cfg = ResilienceConfig()  # the default: no timeout, no chaos
    idle = _per_call(
        lambda: resilience.guarded_execute(
            job, False, idle_cfg, 1, execute=stub
        ),
        rounds,
    )
    armed_cfg = ResilienceConfig(timeout=60.0)  # setitimer armed/disarmed
    armed = _per_call(
        lambda: resilience.guarded_execute(
            job, False, armed_cfg, 1, execute=stub
        ),
        rounds,
    )
    idle_frac = max(0.0, idle - direct) / sim
    armed_frac = max(0.0, armed - direct) / sim
    print(
        f"\nsim {sim * 1e3:.1f} ms; guard/attempt idle "
        f"{(idle - direct) * 1e6:.1f} us ({100 * idle_frac:.4f}%), armed "
        f"{(armed - direct) * 1e6:.1f} us ({100 * armed_frac:.4f}%)"
    )
    assert idle_frac < 0.05
    assert armed_frac < 0.05


def test_cache_checksum_overhead_under_5_percent(tmp_path):
    """Checksummed store+load round-trips cost < 5% of one simulation."""
    sim = _sim_seconds()
    cache = ResultCache(root=tmp_path / "cache")
    job = _job()
    (result,) = run_jobs([job], workers=1, cache=cache)
    key = job.key()

    rounds = 200
    store = _per_call(lambda: cache.store(key, result), rounds)
    load = _per_call(lambda: cache.load(key), rounds)
    frac = (store + load) / sim
    print(
        f"\nsim {sim * 1e3:.1f} ms; cache store {store * 1e6:.0f} us + "
        f"load {load * 1e6:.0f} us per entry ({100 * frac:.3f}%)"
    )
    assert cache.corrupt == 0
    assert frac < 0.05


def test_no_fault_sweep_wall_clock_stable(tmp_path):
    """A sweep under a full (idle) policy tracks an unguarded one.

    Generous bound: this only catches gross regressions (an accidental
    sleep, journal fsync per *attempt* instead of per completion, ...),
    machine noise owns anything finer.
    """
    jobs = [_job()]
    guarded_cfg = ResilienceConfig(timeout=120.0, retries=3)

    def run_once(cfg, root):
        start = now_ns()
        run_jobs(
            jobs,
            workers=1,
            cache=ResultCache(root=root, enabled=False),
            resilience_config=cfg,
        )
        return (now_ns() - start) / 1e9

    run_once(ResilienceConfig(), tmp_path / "warm")  # warmup, untimed
    plain = min(
        run_once(ResilienceConfig(), tmp_path / "a") for _ in range(2)
    )
    guarded = min(
        run_once(guarded_cfg, tmp_path / "b") for _ in range(2)
    )
    ratio = guarded / plain
    print(f"\nno-fault sweep ratio guarded/plain: {ratio:.3f}")
    assert ratio < 1.5
