"""Ablation: memory scheduling policy (FR-FCFS vs FCFS).

The paper's simulator inherits DRAMSim2's first-ready scheduling; this
bench shows why on a row-locality-rich miss stream: FR-FCFS lifts the
row-hit rate and cuts mean read latency relative to strict FCFS.
"""

import random

from repro.memory.dram import DRAMSystem
from repro.memory.scheduler import MemRequest, MemoryScheduler, SchedulingPolicy
from repro.workloads.profiles import PROFILES
from repro.workloads.tracegen import TraceGenerator


def _stream(count=400):
    generator = TraceGenerator(PROFILES["lbm"], seed=3, footprint_blocks=1 << 16)
    rng = random.Random(9)
    requests = []
    t = 0.0
    for epoch in generator.epochs(count):
        for access in epoch.accesses:
            requests.append((access.addr, access.is_store, t))
            t += rng.uniform(0.0, 12.0)
    return requests


def test_frfcfs_vs_fcfs(benchmark):
    stream = _stream()

    def run_policy(policy):
        dram = DRAMSystem()
        scheduler = MemoryScheduler(dram, policy=policy)
        for addr, is_write, arrival in stream:
            scheduler.submit(MemRequest(addr, is_write, arrival))
        scheduler.run_until_empty()
        return dram.stats.row_hit_rate, scheduler.stats.mean_read_latency_ns

    results = benchmark.pedantic(
        lambda: {p: run_policy(p) for p in SchedulingPolicy},
        rounds=1,
        iterations=1,
    )
    print()
    for policy, (hit_rate, latency) in results.items():
        print(
            f"  {policy.value:8s} row-hit rate {hit_rate:.1%}, "
            f"mean read latency {latency:.1f} ns"
        )
    frfcfs = results[SchedulingPolicy.FRFCFS]
    fcfs = results[SchedulingPolicy.FCFS]
    assert frfcfs[0] >= fcfs[0]  # more row hits
