"""Benchmark guard: the invariant linter must stay pre-commit cheap.

``python -m repro.analysis src/repro --check`` is wired into ``make
lint`` and CI, and is meant to be cheap enough to run on every commit;
this guard keeps a full-repo run under 10 seconds (the concurrency
dataflow rules roughly doubled the per-file work, but a full run is
still ~50x under the bound — a regression tripwire, not a target).
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import iter_python_files, lint_paths
from repro.bench import perf_case
from repro.obs.perf import measure

_SRC = Path(__file__).parent.parent / "src" / "repro"
_BUDGET_SECONDS = 10.0


@perf_case(suite="lint", repeats=3, warmup=1)
def lint_full_repo():
    return lambda: lint_paths([_SRC])


def test_lint_walltime_under_budget():
    files = iter_python_files([_SRC])
    assert len(files) > 50, "expected the full package under src/repro"

    # The correctness run doubles as the warmup (parser caches, imports).
    findings = lint_paths([_SRC])
    stats = measure(lambda: lint_paths([_SRC]), repeats=2, warmup=0)
    elapsed = stats.min_ns / 1e9

    print(
        f"\nlinted {len(files)} files in {elapsed:.3f}s "
        f"({len(files) / elapsed:.0f} files/s), {len(findings)} finding(s)"
    )
    assert findings == [], "\n".join(f.format() for f in findings)
    assert elapsed < _BUDGET_SECONDS, (
        f"linting src/repro took {elapsed:.2f}s, budget is "
        f"{_BUDGET_SECONDS:.0f}s — the gate is no longer pre-commit cheap"
    )


def test_lint_single_file_is_interactive_fast():
    """Editor-integration latency: one hot file well under 100 ms."""
    target = _SRC / "experiments" / "runner.py"
    stats = measure(lambda: lint_paths([target]), repeats=3, warmup=1)
    elapsed = stats.min_ns / 1e9
    print(f"\nlinted {target.name} in {elapsed * 1e3:.1f} ms")
    assert elapsed < 1.0
