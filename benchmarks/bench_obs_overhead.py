"""Benchmark guard: observability must be (almost) free when off.

Measures simulator throughput (epoch-trace misses serviced per second)
in three configurations — observability off (the default), full metrics +
sampled tracing, and full metrics + full tracing — and asserts:

* the no-op instrumentation path costs < 5% of a run (measured by timing
  the actual per-miss guard cost against the per-miss simulation cost,
  which is robust to machine noise in a way run-vs-run wall deltas are
  not, plus a generous wall-clock sanity bound between repeated runs),
* enabling sampled tracing stays cheap relative to full tracing.
"""

from __future__ import annotations

import pytest

from repro.core.controller import ProtectionMode
from repro.experiments.common import Scale
from repro.experiments.simruns import run_benchmark
from repro.obs import NULL_OBS, Observability
from repro.obs.perf import measure, now_ns

_BENCH = "lbm"
_MODE = ProtectionMode.COP
_SCALE = Scale.SMOKE
_CORES = 2


def _timed_run(obs):
    start = now_ns()
    outcome = run_benchmark(
        _BENCH, _MODE, _SCALE, cores=_CORES, track=False, obs=obs
    )
    elapsed = (now_ns() - start) / 1e9
    return elapsed, outcome


def _best_of(runs, make_obs, warmup=1):
    """Best-of-``runs`` seconds (explicit warmup; fresh obs per run)."""
    for _ in range(warmup):
        obs = make_obs()
        _timed_run(obs)
        obs.close()
    best = None
    outcome = None
    for _ in range(runs):
        obs = make_obs()
        elapsed, outcome = _timed_run(obs)
        obs.close()
        best = elapsed if best is None else min(best, elapsed)
    return best, outcome


class DevNull:
    def write(self, _):
        pass

    def flush(self):
        pass

    def close(self):
        pass


def test_noop_guard_under_5_percent():
    """The disabled-path cost per miss is < 5% of the real per-miss work."""
    t_off, outcome = _best_of(3, lambda: NULL_OBS)
    misses = outcome.perf.llc_misses
    assert misses > 0
    per_miss_ns = t_off / misses * 1e9

    # The hot path pays one `obs.enabled` check per miss and per
    # writeback, plus the no-op method-call surface behind it.  Time that
    # guard directly at call volume.
    obs = NULL_OBS

    def check_guard():
        if obs.enabled:
            raise AssertionError("NULL_OBS must be disabled")

    guard_ns = float(
        measure(check_guard, repeats=1, warmup=1000, inner=200_000).min_ns
    )

    # Two guard evaluations per miss (miss + potential writeback), with
    # slack for attribute-access jitter.
    overhead_fraction = (4 * guard_ns) / per_miss_ns
    print(
        f"\nper-miss {per_miss_ns:.0f} ns, guard {guard_ns:.0f} ns, "
        f"no-op overhead {100 * overhead_fraction:.3f}%"
    )
    assert overhead_fraction < 0.05


def test_disabled_run_wall_clock_stable():
    """Repeated disabled runs agree — the no-op path has no hidden drift."""
    t_first, _ = _best_of(2, lambda: NULL_OBS)
    t_second, _ = _best_of(2, lambda: NULL_OBS)
    ratio = max(t_first, t_second) / min(t_first, t_second)
    print(f"\ndisabled-run repeatability ratio: {ratio:.3f}")
    assert ratio < 1.5  # generous: guards against gross regressions only


def test_throughput_off_vs_sampled_vs_full():
    """Report the three throughputs; sampled tracing must beat full."""
    t_off, outcome = _best_of(3, lambda: NULL_OBS)
    t_sampled, _ = _best_of(
        3,
        lambda: Observability.create(
            trace_sink=DevNull(), sample_rate=0.01, seed=0
        ),
    )
    t_full, _ = _best_of(
        3,
        lambda: Observability.create(trace_sink=DevNull(), sample_rate=1.0),
    )
    misses = outcome.perf.llc_misses
    print(
        f"\nthroughput (misses/s): off={misses / t_off:,.0f} "
        f"sampled(1%)={misses / t_sampled:,.0f} full={misses / t_full:,.0f}"
    )
    # Full tracing does strictly more JSON serialisation than 1% sampling;
    # allow noise margin but catch a sampling rate that stopped working.
    assert t_sampled <= t_full * 1.2
    # Observability on (even full) must not explode the runtime.
    assert t_full < t_off * 3.0


@pytest.mark.benchmark(group="obs-overhead")
def test_bench_disabled(benchmark):
    benchmark.pedantic(
        lambda: run_benchmark(
            _BENCH, _MODE, _SCALE, cores=_CORES, track=False, obs=NULL_OBS
        ),
        rounds=1,
        iterations=1,
    )


@pytest.mark.benchmark(group="obs-overhead")
def test_bench_full_obs(benchmark):
    def run():
        obs = Observability.create(trace_sink=DevNull(), sample_rate=1.0)
        out = run_benchmark(
            _BENCH, _MODE, _SCALE, cores=_CORES, track=False, obs=obs
        )
        obs.close()
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)
