"""Ablation: DRAM page policy and address mapping.

The paper's results assume an open-row policy and a locality-friendly
address mapping (its embedded-ECC discussion explicitly leans on the
open-row behaviour).  This bench quantifies both assumptions on a
row-locality-rich stream:

* open vs closed page: the open policy converts sequential runs into
  row hits; closed pays an activate every time;
* channel-interleaved vs row-contiguous mapping: interleaving halves the
  run length seen by each channel but doubles usable bus bandwidth.
"""

from repro.memory.address import AddressMapper, DRAMGeometry
from repro.memory.dram import DDR3_1600, DRAMConfig, DRAMSystem, PagePolicy
from repro.workloads.profiles import PROFILES
from repro.workloads.tracegen import TraceGenerator


def _stream(count=2500):
    generator = TraceGenerator(
        PROFILES["lbm"], seed=5, footprint_blocks=1 << 16
    )
    t = 0.0
    out = []
    for epoch in generator.epochs(count // 4):
        for access in epoch.accesses:
            out.append((access.addr, access.is_store, t))
            t += 6.0
    return out


def _replay(dram, stream):
    latencies = []
    for addr, is_write, arrival in stream:
        timing = dram.access(addr, is_write, arrival)
        latencies.append(timing.latency_ns)
    return sum(latencies) / len(latencies), dram.stats.row_hit_rate


def test_page_policy_and_mapping_ablation(benchmark):
    stream = _stream()

    def sweep():
        results = {}
        for policy in PagePolicy:
            dram = DRAMSystem(DRAMConfig(page_policy=policy))
            results[f"{policy.value}-page"] = _replay(dram, stream)
        # Row-contiguous mapping: col below channel (long same-channel runs).
        contiguous = DRAMSystem(DDR3_1600)
        contiguous.mapper = AddressMapper(
            DRAMGeometry(), order=("row", "rank", "bank", "channel", "col")
        )
        results["open-page/contiguous-map"] = _replay(contiguous, stream)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for name, (latency, hit_rate) in results.items():
        print(f"  {name:26s} mean latency {latency:6.1f} ns, "
              f"row hits {hit_rate:6.1%}")

    open_lat, open_hits = results["open-page"]
    closed_lat, closed_hits = results["closed-page"]
    contig_lat, contig_hits = results["open-page/contiguous-map"]
    # Open-row turns lbm's sequential runs into row hits; closed cannot.
    assert open_hits > 0.5
    assert closed_hits == 0.0
    assert open_lat < closed_lat
    # The contiguous mapping raises row locality further still.
    assert contig_hits >= open_hits - 0.02
