"""Regenerates Figure 1: FPC compressibility vs target compression ratio."""

from conftest import run_experiment

from repro.experiments import fig01_fpc_targets


def test_fig01_fpc_target_curves(benchmark, fast_scale):
    table = run_experiment(
        benchmark, fig01_fpc_targets.run, fast_scale, "fig01_fpc_targets"
    )
    libq = dict(table.rows)["libquantum"]
    # The figure's signature: libquantum compresses mostly at low targets.
    assert libq[1] > 0.5, "most libquantum blocks should compress ~10%"
    assert libq[5] < 0.2, "libquantum should look incompressible at 50%"
    # Curves are monotonically non-increasing in the target ratio.
    for label, values in table.rows:
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:])), label
