"""Regenerates the paper's in-text quantitative claims."""

from conftest import run_experiment

from repro.experiments import intext_claims


def test_intext_claims(benchmark, fast_scale):
    table = run_experiment(
        benchmark, intext_claims.run, fast_scale, "intext_claims"
    )
    rows = dict(table.rows)
    measured_word, analytic_word, paper_word = rows["P(random word valid)"]
    assert abs(measured_word - analytic_word) < 0.001
    assert abs(analytic_word - paper_word) < 0.0002  # 0.39%
    # "0.00002%" chance of a random block aliasing.
    _, analytic_alias, _ = rows["P(random block aliases)"]
    assert 1e-7 < analytic_alias < 1e-6
    # The static hash keeps repeated-code-word blocks from aliasing.
    assert rows["repeated-codeword block CWs (hash on)"][0] <= 2
    # COP-ER vs ECC DIMM multi-bit ratio: the paper's "6x".
    ratio = rows["COP-ER vs ECC-DIMM error ratio"][0]
    assert 5.0 < ratio < 8.0
