"""Microbenchmarks of the hot kernels (true pytest-benchmark timing).

These measure the software model's throughput — SECDED syndrome checks,
the per-scheme compressors, the full COP encode/decode pipeline — which is
what bounds the experiment harness's runtime.  They have no paper
counterpart but document the cost profile of the reproduction.
"""

import random

import pytest

from repro.bench import perf_case
from repro.compression import (
    FPCCompressor,
    MSBCompressor,
    RLECompressor,
    TextCompressor,
    cop_combined_compressor,
    payload_budget,
)
from repro.core.codec import COPCodec
from repro.ecc.codes import code_128_120
from repro.obs.perf import best_seconds
from repro.workloads.profiles import PROFILES
from repro.experiments.common import sample_blocks

_BUDGET = payload_budget(4)


def _profile_blocks(count=256, seed=3):
    return sample_blocks(PROFILES["gcc"], count, seed=seed)


def _codewords(count=512, seed=1):
    code = code_128_120()
    rng = random.Random(seed)
    return code, [code.encode(rng.getrandbits(120)) for _ in range(count)]


# -- trajectory cases (run by `cop-experiments bench --suite kernels`) --------


@perf_case(suite="kernels")
def syndrome_scan_scalar():
    code, words = _codewords()
    return lambda: [code.syndrome(w) for w in words]


@perf_case(suite="kernels", inner=8)
def syndrome_scan_batch():
    import numpy as np

    code, words = _codewords()
    arr = np.frombuffer(
        b"".join(w.to_bytes(16, "little") for w in words), dtype=np.uint8
    ).reshape(512, 16)
    code.syndrome_many(arr)  # build the numpy LUTs outside the timing
    return lambda: code.syndrome_many(arr)


@perf_case(suite="kernels")
def cop_encode():
    blocks = _profile_blocks()
    codec = COPCodec()
    return lambda: [codec.encode(b) for b in blocks]


@perf_case(suite="kernels")
def cop_decode():
    blocks = _profile_blocks()
    codec = COPCodec()
    stored = [codec.encode(b).stored for b in blocks]
    return lambda: [codec.decode(s) for s in stored]


@perf_case(suite="kernels", inner=4)
def batch_decode():
    from repro.kernels import BatchCodec, blocks_to_array

    blocks = _profile_blocks()
    codec = COPCodec()
    batch = BatchCodec(codec)
    stored = blocks_to_array([codec.encode(b).stored for b in blocks])
    batch.decode_many(stored)
    return lambda: batch.decode_many(stored)


@pytest.fixture(scope="module")
def blocks():
    return sample_blocks(PROFILES["gcc"], 256, seed=3)


@pytest.fixture(scope="module")
def random_blocks():
    rng = random.Random(5)
    return [rng.randbytes(64) for _ in range(256)]


def test_secded_syndrome_throughput(benchmark):
    code = code_128_120()
    rng = random.Random(1)
    words = [code.encode(rng.getrandbits(120)) for _ in range(512)]
    benchmark(lambda: [code.syndrome(w) for w in words])


def test_secded_encode_throughput(benchmark):
    code = code_128_120()
    rng = random.Random(2)
    payloads = [rng.getrandbits(120) for _ in range(512)]
    benchmark(lambda: [code.encode(p) for p in payloads])


@pytest.mark.parametrize(
    "scheme",
    [
        MSBCompressor(5, True),
        RLECompressor(34),
        TextCompressor(),
        FPCCompressor(),
    ],
    ids=lambda s: s.name,
)
def test_compressor_throughput(benchmark, blocks, scheme):
    benchmark(lambda: [scheme.compress(b, _BUDGET) for b in blocks])


def test_combined_compress_throughput(benchmark, blocks):
    combined = cop_combined_compressor(4)
    benchmark(lambda: [combined.compress(b, _BUDGET + 2) for b in blocks])


def test_cop_encode_throughput(benchmark, blocks):
    codec = COPCodec()
    benchmark(lambda: [codec.encode(b) for b in blocks])


def test_cop_decode_throughput(benchmark, blocks):
    codec = COPCodec()
    stored = [codec.encode(b).stored for b in blocks]
    benchmark(lambda: [codec.decode(s) for s in stored])


def test_cop_decode_raw_passthrough_throughput(benchmark, random_blocks):
    """Decoding incompressible blocks exercises only the syndrome path."""
    codec = COPCodec()
    benchmark(lambda: [codec.decode(b) for b in random_blocks])


# -- batch kernels (repro.kernels) -------------------------------------------


def test_batch_codeword_count_throughput(benchmark, random_blocks):
    from repro.kernels import BatchCodec, blocks_to_array

    batch = BatchCodec(COPCodec())
    arr = blocks_to_array(random_blocks)
    batch.codeword_count_many(arr)  # warm the numpy LUTs
    benchmark(lambda: batch.codeword_count_many(arr))


def test_batch_decode_throughput(benchmark, blocks):
    from repro.kernels import BatchCodec, blocks_to_array

    codec = COPCodec()
    batch = BatchCodec(codec)
    stored = blocks_to_array([codec.encode(b).stored for b in blocks])
    batch.decode_many(stored)
    benchmark(lambda: batch.decode_many(stored))


def test_batch_encode_throughput(benchmark, blocks):
    from repro.kernels import BatchCodec, blocks_to_array

    batch = BatchCodec(COPCodec())
    arr = blocks_to_array(blocks)
    batch.encode_many(arr)
    benchmark(lambda: batch.encode_many(arr))


def test_syndrome_scan_speedup_guard():
    """Acceptance gate: the vectorised 512-word syndrome scan must beat
    the scalar loop by at least 5x (measured ~17x; the assert leaves
    headroom for noisy CI machines)."""
    import numpy as np

    code = code_128_120()
    rng = random.Random(21)
    words = [code.encode(rng.getrandbits(120)) for _ in range(512)]
    arr = np.frombuffer(
        b"".join(w.to_bytes(16, "little") for w in words), dtype=np.uint8
    ).reshape(512, 16)
    code.syndrome_many(arr)  # warm the numpy LUTs

    scalar = best_seconds(lambda: [code.syndrome(w) for w in words])
    batch = best_seconds(lambda: code.syndrome_many(arr), reps=20)
    speedup = scalar / batch
    print(
        f"\n512-word syndrome scan: scalar {1e6 * scalar:.0f} us, "
        f"batch {1e6 * batch:.0f} us, speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0
