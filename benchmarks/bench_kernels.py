"""Microbenchmarks of the hot kernels (true pytest-benchmark timing).

These measure the software model's throughput — SECDED syndrome checks,
the per-scheme compressors, the full COP encode/decode pipeline — which is
what bounds the experiment harness's runtime.  They have no paper
counterpart but document the cost profile of the reproduction.
"""

import random

import pytest

from repro.compression import (
    FPCCompressor,
    MSBCompressor,
    RLECompressor,
    TextCompressor,
    cop_combined_compressor,
    payload_budget,
)
from repro.core.codec import COPCodec
from repro.ecc.codes import code_128_120
from repro.workloads.profiles import PROFILES
from repro.experiments.common import sample_blocks

_BUDGET = payload_budget(4)


@pytest.fixture(scope="module")
def blocks():
    return sample_blocks(PROFILES["gcc"], 256, seed=3)


@pytest.fixture(scope="module")
def random_blocks():
    rng = random.Random(5)
    return [rng.randbytes(64) for _ in range(256)]


def test_secded_syndrome_throughput(benchmark):
    code = code_128_120()
    rng = random.Random(1)
    words = [code.encode(rng.getrandbits(120)) for _ in range(512)]
    benchmark(lambda: [code.syndrome(w) for w in words])


def test_secded_encode_throughput(benchmark):
    code = code_128_120()
    rng = random.Random(2)
    payloads = [rng.getrandbits(120) for _ in range(512)]
    benchmark(lambda: [code.encode(p) for p in payloads])


@pytest.mark.parametrize(
    "scheme",
    [
        MSBCompressor(5, True),
        RLECompressor(34),
        TextCompressor(),
        FPCCompressor(),
    ],
    ids=lambda s: s.name,
)
def test_compressor_throughput(benchmark, blocks, scheme):
    benchmark(lambda: [scheme.compress(b, _BUDGET) for b in blocks])


def test_combined_compress_throughput(benchmark, blocks):
    combined = cop_combined_compressor(4)
    benchmark(lambda: [combined.compress(b, _BUDGET + 2) for b in blocks])


def test_cop_encode_throughput(benchmark, blocks):
    codec = COPCodec()
    benchmark(lambda: [codec.encode(b) for b in blocks])


def test_cop_decode_throughput(benchmark, blocks):
    codec = COPCodec()
    stored = [codec.encode(b).stored for b in blocks]
    benchmark(lambda: [codec.decode(s) for s in stored])


def test_cop_decode_raw_passthrough_throughput(benchmark, random_blocks):
    """Decoding incompressible blocks exercises only the syndrome path."""
    codec = COPCodec()
    benchmark(lambda: [codec.decode(b) for b in random_blocks])
