"""All six protection schemes head-to-head (the Section 2 landscape).

Normalized IPC and DRAM row-hit rate across the design space the paper
situates COP in:

* ECC-Region (Virtualized-ECC-like): extra metadata access, far away;
* embedded ECC (Zheng et al.): extra metadata access, same DRAM row —
  the paper credits it with *improved ECC access latency*, which shows up
  here as a clearly higher row-hit rate (the metadata access opens no new
  row).  Interestingly, with metadata cached in the shared LLC the
  latency win does not become an IPC win: the region baseline's
  contiguous metadata enjoys better cache reuse under channel-interleaved
  addressing.  The paper makes no IPC claim for embedded ECC, so we
  assert only what it does claim.
* MemZip (Shafiee et al.): metadata access only for incompressible
  blocks, but dedicated tracking metadata and reserved space;
* COP / COP-ER: no reservation, no tracking metadata, (almost) no extra
  accesses.
"""

from conftest import run_experiment  # noqa: F401 (uniform import style)

from repro.core.controller import ProtectionMode
from repro.experiments.common import Scale, geomean
from repro.experiments.simruns import run_benchmark

_BENCHMARKS = ("mcf", "lbm", "canneal")
_MODES = (
    ProtectionMode.UNPROTECTED,
    ProtectionMode.COP,
    ProtectionMode.COP_ER,
    ProtectionMode.MEMZIP,
    ProtectionMode.EMBEDDED_ECC,
    ProtectionMode.ECC_REGION,
)


def test_baseline_comparison(benchmark, sim_scale):
    def sweep():
        normalized = {mode: [] for mode in _MODES}
        row_hits = {mode: [] for mode in _MODES}
        for name in _BENCHMARKS:
            perfs = {
                mode: run_benchmark(
                    name, mode, sim_scale, cores=4, track=False
                ).perf
                for mode in _MODES
            }
            base = perfs[ProtectionMode.UNPROTECTED].ipc
            for mode in _MODES:
                normalized[mode].append(perfs[mode].ipc / base)
                row_hits[mode].append(perfs[mode].row_hit_rate)
        return (
            {mode: geomean(vals) for mode, vals in normalized.items()},
            {mode: sum(v) / len(v) for mode, v in row_hits.items()},
        )

    ipc, row_hit = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"  {'scheme':14s} {'norm. IPC':>10s} {'row-hit':>9s}")
    for mode in sorted(_MODES, key=lambda m: -ipc[m]):
        print(f"  {mode.value:14s} {ipc[mode]:10.3f} {row_hit[mode]:9.1%}")

    # COP and COP-ER beat every metadata-access baseline (Fig. 11's story
    # extended across the Section 2 landscape).
    for baseline in (
        ProtectionMode.MEMZIP,
        ProtectionMode.EMBEDDED_ECC,
        ProtectionMode.ECC_REGION,
    ):
        assert ipc[ProtectionMode.COP] > ipc[baseline] - 0.01
        assert ipc[ProtectionMode.COP_ER] > ipc[baseline] - 0.01
    # MemZip's compression removes most metadata accesses: it clearly
    # beats both always-touch-metadata layouts.
    assert ipc[ProtectionMode.MEMZIP] > ipc[ProtectionMode.EMBEDDED_ECC]
    assert ipc[ProtectionMode.MEMZIP] > ipc[ProtectionMode.ECC_REGION]
    # The paper's embedded-ECC claim: better ECC access *latency* — its
    # metadata accesses land in already-open rows.
    assert row_hit[ProtectionMode.EMBEDDED_ECC] > row_hit[
        ProtectionMode.ECC_REGION
    ]
