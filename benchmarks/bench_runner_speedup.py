"""Benchmark: serial vs parallel wall time for the experiment runner.

Runs a fixed eight-job SMOKE matrix (four benchmarks x COP/COP-ER)
through :func:`repro.experiments.runner.run_jobs` at 1, 2 and 4 workers
with the cache disabled, so the recorded benchmark JSON tracks the
fan-out speedup across machines.  On a single-core box (or one without
``fork``) the parallel variants measure the dispatch overhead instead —
``extra_info`` records the CPU count so the numbers can be read in
context.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.bench import perf_case
from repro.core.controller import ProtectionMode
from repro.experiments.common import Scale
from repro.experiments.runner import SimJob, run_jobs

_JOBS = [
    SimJob(
        benchmark=name,
        mode=mode,
        scale=Scale.SMOKE,
        cores=2,
        track=False,
    )
    for name in ("mcf", "lbm", "gcc", "soplex")
    for mode in (ProtectionMode.COP, ProtectionMode.COP_ER)
]

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


# -- trajectory cases (run by `cop-experiments bench --suite runner`) ---------


@perf_case(suite="runner", repeats=3, warmup=1)
def run_jobs_serial_smoke():
    """One uncached SMOKE simulation through the full runner stack."""
    jobs = _JOBS[:1]
    return lambda: run_jobs(jobs, workers=1, use_cache=False)


@perf_case(suite="runner", inner=200)
def job_cache_key():
    """Spec hashing cost — paid once per job on every sweep."""
    job = _JOBS[0]
    return lambda: job.key()


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_runner_speedup(benchmark, workers):
    if workers > 1 and not _HAS_FORK:
        pytest.skip("no fork start method; parallel path unavailable")
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["jobs"] = len(_JOBS)
    benchmark.extra_info["cpus"] = os.cpu_count()
    results = benchmark.pedantic(
        run_jobs,
        args=(_JOBS,),
        kwargs={"workers": workers, "use_cache": False},
        rounds=1,
        iterations=1,
    )
    assert len(results) == len(_JOBS)
    assert all(r.perf.ipc > 0 for r in results)


def test_parallel_results_match_serial_here():
    """The speedup numbers above only mean something if the outputs are
    interchangeable — assert bit-equality on this machine too."""
    serial = run_jobs(_JOBS[:4], workers=1, use_cache=False)
    if not _HAS_FORK:
        pytest.skip("no fork start method; parallel path unavailable")
    parallel = run_jobs(_JOBS[:4], workers=4, use_cache=False)
    assert parallel == serial
