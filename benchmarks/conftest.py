"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one figure/table of the paper through
pytest-benchmark: the experiment runs once (``pedantic`` with a single
round — these are reproductions, not microbenchmarks), its table is
printed and saved under ``results/``, and its headline shape is asserted.
Scale defaults keep the suite minutes-fast; set ``REPRO_SCALE=full`` for
paper-fidelity sample sizes.

Timing in this directory goes through :mod:`repro.obs.perf` (monotonic
``time.perf_counter_ns``, explicit warmup) — the same protocol the
``BENCH_*.json`` trajectory artifacts use — so guard assertions and
artifacts never disagree about methodology.  The helpers are re-exported
here for bench files that want one import point.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import Scale
from repro.obs.perf import best_seconds, measure, now_ns  # noqa: F401  (re-export)


def run_experiment(benchmark, run, scale: Scale, save_as: str):
    """Run one experiment harness under pytest-benchmark and persist it."""
    table = benchmark.pedantic(run, args=(scale,), rounds=1, iterations=1)
    print()
    print(table.to_text())
    table.save(save_as)
    return table


@pytest.fixture
def fast_scale() -> Scale:
    """Scale for cheap (compressibility/census) experiments."""
    return Scale.from_env(default=Scale.SMALL)


@pytest.fixture
def sim_scale() -> Scale:
    """Scale for full-simulation experiments (Figs. 10-12)."""
    return Scale.from_env(default=Scale.SMOKE)
