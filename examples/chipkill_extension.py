#!/usr/bin/env python3
"""Scenario: surviving a dead DRAM chip with COP-chipkill.

The paper's conclusion leaves chipkill support to future work; this
example runs the exploration we built.  A database-like workload (mcf's
pointer-rich data) is protected with COP-chipkill — Reed-Solomon RS(8,6)
per 8-byte beat, fitted inline by compressing blocks 25% — and then chip 5
of the rank dies.  Every protected block is reconstructed by erasure
decoding; a plain SECDED COP block would have been lost.

Run: ``python examples/chipkill_extension.py``
"""

import random

from repro.core.chipkill import ChipkillCodec
from repro.core.codec import COPCodec
from repro.experiments.common import sample_blocks

BLOCKS = 600
FAILED_CHIP = 5


def main() -> None:
    rng = random.Random(2024)
    chip_codec = ChipkillCodec()
    cop_codec = COPCodec()
    blocks = sample_blocks("mcf", BLOCKS, seed=8)

    chip_images = [chip_codec.encode(b) for b in blocks]
    protected = sum(1 for e in chip_images if e.compressed)
    cop_protected = sum(1 for b in blocks if cop_codec.encode(b).compressed)
    print(f"workload: mcf, {BLOCKS} blocks")
    print(f"COP (6.25% target) protects   {cop_protected / BLOCKS:7.1%}")
    print(f"chipkill (25% target) protects {protected / BLOCKS:6.1%}")
    print("  -> the correction/coverage trade-off the paper predicts\n")

    # Chip 5 dies: every beat of every block loses one byte symbol.
    survived = lost_cop = 0
    for block, encoded in zip(blocks, chip_images):
        if not encoded.compressed:
            continue
        garbage = rng.randbytes(8)
        image = ChipkillCodec.fail_chip(encoded.stored, FAILED_CHIP, garbage)
        decoded = chip_codec.decode(image, failed_chip=FAILED_CHIP)
        if decoded.data == block:
            survived += 1

    # The same failure against plain COP's SECDED blocks.
    for block in blocks[:100]:
        encoded = cop_codec.encode(block)
        if not encoded.compressed:
            continue
        image = ChipkillCodec.fail_chip(
            encoded.stored, FAILED_CHIP, rng.randbytes(8)
        )
        if cop_codec.decode(image).data != block:
            lost_cop += 1

    print(f"chip {FAILED_CHIP} fails:")
    print(f"  COP-chipkill recovers {survived}/{protected} protected blocks "
          f"(erasure decoding, one RS symbol per beat)")
    print(f"  plain COP loses {lost_cop}/{lost_cop} sampled compressed "
          f"blocks (8 corrupted bytes overwhelm SECDED)")
    print("\nchipkill-class resilience without the 36-chip DIMMs it "
          "usually requires — paid for with a higher compression target")


if __name__ == "__main__":
    main()
