#!/usr/bin/env python3
"""Scenario: plugging a custom compression scheme into COP.

The combined compressor reserves a 2-bit tag, so a deployment can swap in
domain-specific schemes.  Here we add a "delta-u32" scheme for telemetry
buffers (monotonic 32-bit timestamps/counters: large values, small
strides) that none of the paper's schemes catch, and show COP protecting
blocks that were previously stored raw.

Run: ``python examples/custom_compression_scheme.py``
"""

import random
import struct
from typing import Optional

from repro._bits import Bits, BitReader, BitWriter
from repro.compression import CombinedCompressor, CompressionScheme
from repro.compression.base import BLOCK_BYTES
from repro.compression.combined import cop_scheme_suite
from repro.core.codec import COPCodec


class DeltaU32Compressor(CompressionScheme):
    """First u32 verbatim, then fifteen 28-bit deltas (frees 60 bits)."""

    name = "DELTA32"
    _DELTA_BITS = 28

    def compress(self, block: bytes, budget_bits: int) -> Optional[Bits]:
        if 32 + 15 * self._DELTA_BITS > budget_bits:
            return None
        values = struct.unpack("<16I", block)
        writer = BitWriter()
        writer.write(values[0], 32)
        for prev, curr in zip(values, values[1:]):
            delta = (curr - prev) & 0xFFFFFFFF
            if delta >> self._DELTA_BITS:
                return None
            writer.write(delta, self._DELTA_BITS)
        return writer.getbits()

    def decompress(self, payload: Bits) -> bytes:
        reader = BitReader(payload)
        values = [reader.read(32)]
        for _ in range(15):
            delta = reader.read(self._DELTA_BITS)
            values.append((values[-1] + delta) & 0xFFFFFFFF)
        return struct.pack("<16I", *values)


def telemetry_block(rng: random.Random) -> bytes:
    """Monotonic timestamps with jitter: high entropy in the high bits."""
    t = rng.getrandbits(32)
    values = []
    for _ in range(BLOCK_BYTES // 4):
        values.append(t)
        t = (t + rng.randrange(1, 1 << 20)) & 0xFFFFFFFF
    return struct.pack("<16I", *values)


def main() -> None:
    rng = random.Random(99)
    blocks = [telemetry_block(rng) for _ in range(500)]

    stock = COPCodec()
    stock_protected = sum(1 for b in blocks if stock.encode(b).compressed)

    # Build a hybrid with the custom scheme in the 4th tag slot.
    schemes = list(cop_scheme_suite(4).values()) + [DeltaU32Compressor()]
    custom = COPCodec(compressor=CombinedCompressor(schemes))
    custom_protected = 0
    for block in blocks:
        encoded = custom.encode(block)
        if encoded.compressed:
            custom_protected += 1
            decoded = custom.decode(encoded.stored)
            assert decoded.data == block  # exact round trip through DRAM

    print(f"telemetry blocks protected by the stock hybrid:  "
          f"{stock_protected}/{len(blocks)}")
    print(f"telemetry blocks protected with DELTA32 plugged in: "
          f"{custom_protected}/{len(blocks)}")
    print("the 2-bit scheme tag makes COP's hybrid extensible — the "
          "decoder dispatches on the tag, DRAM stores nothing extra")


if __name__ == "__main__":
    main()
