#!/usr/bin/env python3
"""Scenario: protecting a text-heavy service on commodity (non-ECC) DIMMs.

The paper's motivating deployment: a cost-conscious machine (web cache,
log processor, render farm) whose operator wants soft-error protection
without paying for ECC DIMMs.  We model a perlbench-like text workload,
measure how much of its traffic COP protects, and compare the end-to-end
cost against the in-memory-ECC alternative.

Run: ``python examples/text_service_protection.py``
"""

from repro.core.controller import ProtectionMode
from repro.experiments.common import Scale
from repro.experiments.simruns import run_benchmark
from repro.workloads.profiles import PROFILES


def main() -> None:
    profile = PROFILES["perlbench"]
    print(f"workload: {profile.name} ({profile.suite}), "
          f"{profile.footprint_mb} MB footprint, {profile.mpki} MPKI\n")

    results = {}
    for mode in (
        ProtectionMode.UNPROTECTED,
        ProtectionMode.COP,
        ProtectionMode.COP_ER,
        ProtectionMode.ECC_REGION,
    ):
        results[mode] = run_benchmark(profile, mode, Scale.SMOKE, cores=4)

    base_ipc = results[ProtectionMode.UNPROTECTED].perf.ipc
    print(f"{'scheme':12s} {'norm. IPC':>10s} {'SER reduction':>14s} "
          f"{'extra DRAM space':>18s}")
    for mode, outcome in results.items():
        norm = outcome.perf.ipc / base_ipc
        reduction = outcome.vulnerability.error_rate_reduction
        if mode is ProtectionMode.ECC_REGION:
            extra = "2 B per block"
        elif mode is ProtectionMode.COP_ER:
            region = outcome.memory.region
            extra = f"{region.peak_bytes} B region"
        else:
            extra = "none"
        print(f"{mode.value:12s} {norm:10.3f} {reduction:14.1%} {extra:>18s}")

    cop = results[ProtectionMode.COP]
    stats = cop.memory.stats
    print(
        f"\nCOP compressed {stats.compressed_write_fraction:.1%} of blocks "
        f"written to DRAM (text compresses under TXT's 7-bit trick), "
        f"rejected {stats.alias_rejects} alias writebacks."
    )


if __name__ == "__main__":
    main()
