#!/usr/bin/env python3
"""Scenario: the paper's trace-capture methodology, end to end.

The evaluation pipeline in the paper: Sniper (Pin-based) runs the
benchmark below a Table-1 cache hierarchy and records the *L3 misses*
with their block contents; the interval simulator replays only those.
This example runs the equivalent flow in this library:

1. synthesise a raw (core-side) access stream for a benchmark,
2. filter it through private L1/L2 + shared L3,
3. show the per-level hit rates and the effective L3 MPKI,
4. measure compressibility over the *filtered* stream — the population
   that actually reaches DRAM, which is what Figs. 8/9 tabulate.

Run: ``python examples/trace_capture_pipeline.py``
"""

import random

from repro.cache.hierarchy import CacheHierarchy, LevelConfig
from repro.compression.combined import cop_combined_compressor
from repro.workloads.blocks import BlockSource
from repro.workloads.profiles import PROFILES
from repro.workloads.tracegen import Access

BENCH = "omnetpp"
RAW_ACCESSES = 30_000
INSTR_PER_ACCESS = 3  # roughly one memory reference per 3 instructions


def raw_stream(profile, source_seed):
    """A core-side stream: hot loops + working-set walks + cold misses."""
    rng = random.Random(f"raw|{profile.name}|{source_seed}")
    hot = [rng.randrange(1 << 14) * 64 for _ in range(8)]
    warm = [rng.randrange(1 << 18) * 64 for _ in range(512)]
    for _ in range(RAW_ACCESSES):
        roll = rng.random()
        if roll < 0.70:
            addr = rng.choice(hot)  # register-adjacent reuse
        elif roll < 0.95:
            addr = rng.choice(warm)  # working set
        else:
            addr = rng.randrange(1 << 26) * 64  # cold / streaming
        yield Access(addr, rng.random() < profile.write_fraction)


def main() -> None:
    profile = PROFILES[BENCH]
    source = BlockSource(profile, seed=17)
    # A scaled-down Table 1 hierarchy (divide every level by 16).
    hierarchy = CacheHierarchy(
        cores=1,
        levels=(
            LevelConfig("L1D", 2 << 10, 8, 4, private=True),
            LevelConfig("L2", 16 << 10, 8, 9, private=True),
            LevelConfig("L3", 256 << 10, 16, 34, private=False),
        ),
    )

    misses = hierarchy.filter_accesses(
        0, raw_stream(profile, 17), data_of=source.block
    )

    stats = hierarchy.stats
    print(f"benchmark: {BENCH}; raw stream: {stats.accesses} accesses")
    for level in ("L1D", "L2", "L3"):
        print(f"  {level} hit rate: {stats.hit_rate(level):6.1%}")
    mpki = 1000 * stats.llc_misses / (stats.accesses * INSTR_PER_ACCESS)
    print(f"  L3 misses: {stats.llc_misses}  ->  ~{mpki:.1f} MPKI")

    # Compressibility over the DRAM-visible population only.
    combined = cop_combined_compressor(4)
    blocks = [source.block(access.addr) for access in misses]
    compressible = sum(1 for b in blocks if combined.compressible(b, 480))
    print(
        f"\nof the {len(blocks)} blocks that reach DRAM, "
        f"{compressible / len(blocks):.1%} compress at the 4-byte target"
    )
    print("(this filtered population is what Figs. 8-10 are computed over)")


if __name__ == "__main__":
    main()
