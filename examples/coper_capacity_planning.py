#!/usr/bin/env python3
"""Scenario: sizing COP-ER's ECC region for an incompressible workload.

A media server (x264-like data: many high-entropy blocks) wants *complete*
soft-error coverage.  Virtualized-ECC-style baselines reserve 2 bytes per
block up front; COP-ER grows its region on demand, spending entries only
on blocks that are actually incompressible.  This example walks the region
mechanics — pointer embedding, entry reuse on writeback, frees when data
becomes compressible — and reports the footprint both designs need.

Run: ``python examples/coper_capacity_planning.py``
"""

from repro.core.controller import ProtectedMemory, ProtectionMode
from repro.core.coper import ENTRIES_PER_BLOCK, ECCRegion
from repro.workloads.blocks import BlockSource
from repro.workloads.profiles import PROFILES

BLOCKS = 4000


def main() -> None:
    profile = PROFILES["x264"]
    source = BlockSource(profile, seed=9)
    memory = ProtectedMemory(ProtectionMode.COP_ER)

    # Fill memory with the workload's pages.
    for index in range(BLOCKS):
        memory.write(index * 64, source.block(index * 64))

    region = memory.region
    stats = memory.stats
    incompressible = len(memory.ever_incompressible)
    print(f"workload: {profile.name}; {BLOCKS} blocks written")
    print(f"incompressible blocks: {incompressible} "
          f"({incompressible / BLOCKS:.1%})")
    print(f"live ECC entries: {len(region)} "
          f"({ENTRIES_PER_BLOCK} pack into each 64-byte region block)")

    coper_bytes = region.peak_bytes
    baseline_bytes = BLOCKS * 2
    print(f"\nCOP-ER region: {coper_bytes} B "
          f"(incl. the 3-level valid-bit tree)")
    print(f"baseline (2 B/block): {baseline_bytes} B")
    print(f"storage reduction: {1 - coper_bytes / baseline_bytes:.1%} "
          f"(paper average: 80%)")

    # Rewrite some incompressible blocks with compressible data: entries
    # are freed and the region can shrink back.
    freed_before = stats.entry_frees
    zeros = bytes(64)
    reclaimed = 0
    for addr in list(memory.ever_incompressible)[:200]:
        memory.write(addr, zeros)
        reclaimed += 1
    print(f"\nrewrote {reclaimed} blocks with compressible data: "
          f"{stats.entry_frees - freed_before} entries freed, "
          f"{len(region)} remain live")

    # Every stored incompressible image must be pointer-reachable and
    # reconstruct exactly.
    checked = 0
    for addr in list(memory.entry_of)[:100]:
        result = memory.read(addr)
        assert result.was_uncompressed and result.data is not None
        checked += 1
    print(f"verified pointer-based reconstruction for {checked} blocks")


if __name__ == "__main__":
    main()
