#!/usr/bin/env python3
"""Scenario: adaptive code strength for a mixed database workload.

Section 3.1 notes it is "theoretically possible to use stronger codes
for more compressible data blocks"; the paper keeps one ratio for
simplicity.  This example runs our implementation of the idea: blocks
that compress to 56 bytes get the standard 4x(128,120) protection,
blocks that reach 48 bytes get the 8x(64,56) *strong* tier — still zero
metadata, still 64 stored bytes — and multi-bit upsets that would
silently corrupt standard COP blocks are corrected.

Run: ``python examples/adaptive_strength.py``
"""

import random

from repro.core.adaptive import AdaptiveCodec
from repro.core.codec import COPCodec
from repro.experiments.common import sample_blocks

BLOCKS = 800


def main() -> None:
    rng = random.Random(7)
    adaptive = AdaptiveCodec()
    plain = COPCodec()
    blocks = sample_blocks("gcc", BLOCKS, seed=12)

    tiers = {"strong": 0, "standard": 0, "raw": 0}
    for block in blocks:
        tiers[adaptive.strength_of(block)] += 1
    print(f"workload: gcc, {BLOCKS} blocks")
    for tier, count in tiers.items():
        print(f"  {tier:9s} {count / BLOCKS:6.1%}")

    # Double-error campaign against the blocks both codecs protect.
    survived_adaptive = survived_plain = trials = 0
    for block in blocks:
        encoded, strength = adaptive.encode(block)
        plain_encoded = plain.encode(block)
        if strength != "strong" or not plain_encoded.compressed:
            continue
        trials += 1
        words = rng.sample(range(8), 2)
        struck = bytearray(encoded.stored)
        plain_struck = bytearray(plain_encoded.stored)
        for word in words:
            bit = word * 64 + rng.randrange(64)
            struck[bit // 8] ^= 1 << (bit % 8)
            plain_struck[bit // 8] ^= 1 << (bit % 8)
        if adaptive.decode(bytes(struck)).result.data == block:
            survived_adaptive += 1
        if plain.decode(bytes(plain_struck)).data == block:
            survived_plain += 1

    print(f"\nspread double-bit errors over {trials} strong-tier blocks:")
    print(f"  adaptive COP survives {survived_adaptive}/{trials}")
    print(f"  standard COP survives {survived_plain}/{trials} "
          "(two invalid words demote the block to 'raw' silently)")
    print("\nsame 64 stored bytes, same zero metadata — the compressible "
          "majority simply gets the stronger geometry")


if __name__ == "__main__":
    main()
