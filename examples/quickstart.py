#!/usr/bin/env python3
"""Quickstart: protect a 64-byte block with COP and survive a bit flip.

Walks the paper's Fig. 2 pipeline end to end:

1. encode a compressible block (compress -> SECDED -> static hash),
2. read it back cleanly,
3. flip a stored bit (a soft error) and watch the decoder correct it,
4. store an incompressible block raw and see the decoder pass it through,
5. check the alias test that guards raw blocks.

Run: ``python examples/quickstart.py``
"""

import random

from repro import BlockKind, COPCodec


def main() -> None:
    codec = COPCodec()  # the paper's preferred 4-byte variant
    rng = random.Random(2015)

    # -- 1. a compressible block: an array of small counters ------------
    import struct

    block = b"".join(struct.pack("<i", n) for n in range(16))
    encoded = codec.encode(block)
    print(f"block of 16 small int32s -> compressed: {encoded.compressed}")
    assert encoded.compressed

    # -- 2. clean read ----------------------------------------------------
    decoded = codec.decode(encoded.stored)
    assert decoded.kind is BlockKind.COMPRESSED and decoded.data == block
    print(f"clean read: {decoded.valid_codewords}/4 valid code words")

    # -- 3. soft error: flip one stored bit ------------------------------
    struck = bytearray(encoded.stored)
    bit = rng.randrange(512)
    struck[bit // 8] ^= 1 << (bit % 8)
    decoded = codec.decode(bytes(struck))
    assert decoded.data == block, "single-bit error must be corrected"
    print(
        f"after flipping stored bit {bit}: "
        f"{decoded.valid_codewords}/4 valid words, "
        f"{decoded.corrected_words} corrected -> data intact"
    )

    # -- 4. an incompressible block is stored raw -------------------------
    noise = rng.randbytes(64)
    encoded = codec.encode(noise)
    print(f"high-entropy block -> compressed: {encoded.compressed}")
    decoded = codec.decode(encoded.stored)
    assert decoded.kind is BlockKind.RAW and decoded.data == noise
    print("decoder passed the raw block through unmodified")

    # -- 5. the alias guard ----------------------------------------------
    print(f"is the raw block an alias? {codec.is_alias(noise)}")
    print("done: COP protected the compressible block with zero overhead")


if __name__ == "__main__":
    main()
