#!/usr/bin/env python3
"""Scenario: Monte-Carlo soft-error campaign across protection schemes.

Fills a memory with a scientific workload's data (lbm-like floating
point), then bombards it with random bit flips and classifies every
readback: corrected, detected (machine check), or silent corruption.
Cross-validates the paper's analytical claims mechanically — COP survives
essentially all single-bit upsets in compressed blocks, and double errors
split between detected (same code word) and silent (different words)
roughly 1:3 as predicted.

Run: ``python examples/fault_injection_study.py``
"""

from repro.core.controller import ProtectedMemory, ProtectionMode
from repro.reliability import FaultInjector, double_error_outcome_probs
from repro.workloads.blocks import BlockSource
from repro.workloads.profiles import PROFILES

BLOCKS = 1500
TRIALS = 3000


def build_memory(mode: ProtectionMode):
    source = BlockSource(PROFILES["lbm"], seed=7)
    memory = ProtectedMemory(mode)
    golden = {}
    addr = 0
    while len(golden) < BLOCKS:
        data = source.block(addr)
        if memory.write(addr, data).accepted:
            golden[addr] = data
        addr += 4096  # one block per page: sample many content archetypes
    return memory, golden


def main() -> None:
    print(f"{'scheme':12s} {'corrected':>10s} {'masked':>8s} "
          f"{'detected':>9s} {'silent':>8s}")
    for mode in (
        ProtectionMode.UNPROTECTED,
        ProtectionMode.COP,
        ProtectionMode.COP_ER,
        ProtectionMode.ECC_REGION,
        ProtectionMode.ECC_DIMM,
    ):
        memory, golden = build_memory(mode)
        injector = FaultInjector(memory, golden, seed=42)
        stats = injector.run_campaign(TRIALS, flips=1)
        print(
            f"{mode.value:12s} {stats.corrected:>10d} {stats.masked:>8d} "
            f"{stats.detected:>9d} {stats.silent:>8d}"
            f"   (survival {stats.survival_rate:.1%})"
        )

    # Double errors against plain COP: the Section 3.1 corner case.
    memory, golden = build_memory(ProtectionMode.COP)
    injector = FaultInjector(memory, golden, seed=43)
    stats = injector.run_campaign(TRIALS, flips=2)
    probs = double_error_outcome_probs()
    print(
        f"\nCOP, 2 flips per block: detected {stats.detected}, silent "
        f"{stats.silent} (model predicts ~{probs['detected']:.0%} of "
        f"compressed-block double errors detected, ~{probs['silent']:.0%} "
        f"silent)"
    )


if __name__ == "__main__":
    main()
